package core

import (
	"fmt"
	"math/rand"
	"testing"

	"camp/internal/cache"
)

// evictionOrdered pairs the visitor with the mutating drain for the test.
type evictionOrdered interface {
	cache.Policy
	cache.Evicter
	cache.EvictionOrdered
}

// TestVisitEvictionOrderMatchesDrain drives each policy through a random
// mixed workload (with evictions, so L moves), then checks that
// VisitEvictionOrder predicts exactly the sequence EvictOne produces — and
// that visiting mutated nothing.
func TestVisitEvictionOrderMatchesDrain(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() evictionOrdered
	}{
		{name: "camp", mk: func() evictionOrdered { return NewCamp(4096) }},
		{name: "camp-inf", mk: func() evictionOrdered { return NewCamp(4096, WithPrecision(PrecisionInf)) }},
		{name: "gds", mk: func() evictionOrdered { return NewGDS(4096) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.mk()
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("k%03d", rng.Intn(300))
				if rng.Intn(3) == 0 {
					p.Get(key)
				} else {
					p.Set(key, int64(20+rng.Intn(60)), int64(1+rng.Intn(1000)))
				}
			}
			if p.Len() == 0 {
				t.Fatal("degenerate workload: nothing resident")
			}
			var predicted []string
			p.VisitEvictionOrder(func(e cache.Entry) bool {
				predicted = append(predicted, e.Key)
				return true
			})
			if len(predicted) != p.Len() {
				t.Fatalf("visited %d entries, %d resident", len(predicted), p.Len())
			}
			for i := 0; ; i++ {
				victim, ok := p.EvictOne()
				if !ok {
					if i != len(predicted) {
						t.Fatalf("drained %d entries, predicted %d", i, len(predicted))
					}
					break
				}
				if victim.Key != predicted[i] {
					t.Fatalf("eviction %d: drained %q, predicted %q", i, victim.Key, predicted[i])
				}
			}
		})
	}
}

// TestVisitEvictionOrderEarlyStop checks the visitor honors a false return.
func TestVisitEvictionOrderEarlyStop(t *testing.T) {
	p := NewCamp(4096)
	for i := 0; i < 20; i++ {
		p.Set(fmt.Sprintf("k%d", i), 10, int64(i+1))
	}
	n := 0
	p.VisitEvictionOrder(func(cache.Entry) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d entries after early stop, want 5", n)
	}
}

// priorityOrdered pairs the priority exporter/importer with the drain.
type priorityOrdered interface {
	cache.Policy
	cache.Evicter
	cache.PriorityOrdered
}

// drainKeys empties p via EvictOne, returning the victim sequence.
func drainKeys(p priorityOrdered) []string {
	var keys []string
	for {
		victim, ok := p.EvictOne()
		if !ok {
			return keys
		}
		keys = append(keys, victim.Key)
	}
}

// churn drives p through a random mixed workload sized to force evictions,
// so the global offset L rises and entries end up with non-uniform priority
// offsets — the state order-only snapshots cannot reproduce.
func churn(p cache.Policy, rng *rand.Rand, ops int) {
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("k%03d", rng.Intn(300))
		if rng.Intn(3) == 0 {
			p.Get(key)
		} else {
			p.Set(key, int64(20+rng.Intn(60)), int64(1+rng.Intn(1000)))
		}
	}
}

// TestPriorityRoundTripExact is the policy-level mid-churn fidelity
// property: after an evict-heavy workload, exporting every entry's priority
// offset and replaying it (in visitation order) into a fresh policy must
// reproduce the exact cross-queue eviction schedule — the contract snapshot
// format v2 is built on. Checked over many random seeds, against live
// invariants, and for CAMP also after further identical churn on both
// copies (offsets are exact integers there, so the clone must track the
// original forever, not just at restore time).
func TestPriorityRoundTripExact(t *testing.T) {
	type maker struct {
		name string
		mk   func() priorityOrdered
	}
	makers := []maker{
		{name: "camp", mk: func() priorityOrdered { return NewCamp(4096) }},
		{name: "camp-p1", mk: func() priorityOrdered { return NewCamp(4096, WithPrecision(1)) }},
		{name: "camp-inf", mk: func() priorityOrdered { return NewCamp(4096, WithPrecision(PrecisionInf)) }},
		{name: "camp-classicL", mk: func() priorityOrdered { return NewCamp(4096, WithClassicLUpdate()) }},
		{name: "gds", mk: func() priorityOrdered { return NewGDS(4096) }},
	}
	for _, tc := range makers {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 25; seed++ {
				live := tc.mk()
				rng := rand.New(rand.NewSource(seed))
				churn(live, rng, 3000)
				if live.Stats().Evictions == 0 {
					t.Fatalf("seed %d: no evictions — the mid-churn property is vacuous", seed)
				}

				// Export scale + order + offsets — exactly what a v2
				// snapshot records — and restore into a fresh policy.
				restored := tc.mk()
				if ps, ok := live.(cache.PriorityScaled); ok {
					restored.(cache.PriorityScaled).RestorePriorityScale(ps.PriorityScale())
				}
				n := 0
				live.VisitEvictionPriority(func(e cache.Entry, prio, class uint64) bool {
					n++
					if !restored.SetWithPriority(e.Key, e.Size, e.Cost, prio, class) {
						t.Fatalf("seed %d: restore rejected %q", seed, e.Key)
					}
					return true
				})
				if n != live.Len() || restored.Len() != n {
					t.Fatalf("seed %d: visited %d, live %d, restored %d", seed, n, live.Len(), restored.Len())
				}
				if c, ok := restored.(*Camp); ok {
					if err := c.CheckInvariants(); err != nil {
						t.Fatalf("seed %d: restored CAMP invariants: %v", seed, err)
					}
				}
				if g, ok := restored.(*GDS); ok {
					if err := g.CheckInvariants(); err != nil {
						t.Fatalf("seed %d: restored GDS invariants: %v", seed, err)
					}
				}

				// CAMP offsets are exact integers: the clone must keep
				// tracking the original through further identical churn
				// (same sets, gets and evictions on both), not just match
				// at restore time. GDS offsets are floats, exact at
				// restore; skip the evolution half there.
				if _, isCamp := live.(*Camp); isCamp {
					rng2 := rand.New(rand.NewSource(seed + 1000))
					for i := 0; i < 500; i++ {
						key := fmt.Sprintf("k%03d", rng2.Intn(300))
						if rng2.Intn(3) == 0 {
							a, b := live.Get(key), restored.Get(key)
							if a != b {
								t.Fatalf("seed %d: post-restore get(%q) diverged: live %v, restored %v", seed, key, a, b)
							}
						} else {
							size, cost := int64(20+rng2.Intn(60)), int64(1+rng2.Intn(1000))
							a, b := live.Set(key, size, cost), restored.Set(key, size, cost)
							if a != b {
								t.Fatalf("seed %d: post-restore set(%q) diverged: live %v, restored %v", seed, key, a, b)
							}
						}
					}
				}

				want := drainKeys(live)
				got := drainKeys(restored)
				if len(want) != len(got) {
					t.Fatalf("seed %d: drained %d, want %d", seed, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d: eviction %d diverged: restored %q, live %q", seed, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestSetWithPriorityClampsCorruptOffsets pins the defensive half of the
// import contract: offsets a well-formed snapshot cannot contain (beyond
// the entry's rounded ratio; NaN or negative bits for GDS) are clamped into
// the policy's invariant bounds instead of trusted.
func TestSetWithPriorityClampsCorruptOffsets(t *testing.T) {
	c := NewCamp(4096)
	if !c.SetWithPriority("huge", 40, 40, ^uint64(0), 33) {
		t.Fatal("clamped insert rejected")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("CAMP invariants after corrupt offset: %v", err)
	}
	g := NewGDS(4096)
	for _, bits := range []uint64{
		0x7ff8000000000000, // NaN
		0xfff0000000000000, // -Inf
		0x7ff0000000000000, // +Inf
		^uint64(0),         // NaN payload
	} {
		if !g.SetWithPriority(fmt.Sprintf("k%x", bits), 40, 40, bits, 0) {
			t.Fatal("clamped insert rejected")
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("GDS invariants after corrupt offsets: %v", err)
	}
}

// TestSetWithPriorityOutOfOrder pins the sorted-insert path: replaying a
// priority export in a scrambled order must still leave CAMP's queues in
// priority order (the link scans for the right slot instead of assuming
// tail append), so the drain matches the export even for adversarial
// callers.
func TestSetWithPriorityOutOfOrder(t *testing.T) {
	live := NewCamp(4096)
	rng := rand.New(rand.NewSource(42))
	churn(live, rng, 3000)
	type exported struct {
		e           cache.Entry
		prio, class uint64
	}
	var exp []exported
	live.VisitEvictionPriority(func(e cache.Entry, prio, class uint64) bool {
		exp = append(exp, exported{e, prio, class})
		return true
	})
	restored := NewCamp(4096)
	for _, i := range rng.Perm(len(exp)) {
		x := exp[i]
		if !restored.SetWithPriority(x.e.Key, x.e.Size, x.e.Cost, x.prio, x.class) {
			t.Fatalf("out-of-order restore rejected %q", x.e.Key)
		}
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatalf("invariants after out-of-order restore: %v", err)
	}
	// Order within equal (H) ties follows insertion order, which the
	// shuffle changed — but the priority partial order must hold exactly:
	// drained H values must be non-decreasing and match the export's
	// multiset of offsets.
	wantH := make(map[uint64]int)
	for _, x := range exp {
		wantH[x.prio]++
	}
	prev := uint64(0)
	for {
		q, ok := restored.heap.Peek()
		if !ok {
			break
		}
		h := q.head().h
		if h < prev {
			t.Fatalf("drain H went backwards: %d after %d", h, prev)
		}
		prev = h
		victim, _ := restored.EvictOne()
		_ = victim
		wantH[h]--
	}
	for h, n := range wantH {
		if n != 0 {
			t.Fatalf("offset %d: %d entries unaccounted after drain", h, n)
		}
	}
}
