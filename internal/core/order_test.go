package core

import (
	"fmt"
	"math/rand"
	"testing"

	"camp/internal/cache"
)

// evictionOrdered pairs the visitor with the mutating drain for the test.
type evictionOrdered interface {
	cache.Policy
	cache.Evicter
	cache.EvictionOrdered
}

// TestVisitEvictionOrderMatchesDrain drives each policy through a random
// mixed workload (with evictions, so L moves), then checks that
// VisitEvictionOrder predicts exactly the sequence EvictOne produces — and
// that visiting mutated nothing.
func TestVisitEvictionOrderMatchesDrain(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() evictionOrdered
	}{
		{name: "camp", mk: func() evictionOrdered { return NewCamp(4096) }},
		{name: "camp-inf", mk: func() evictionOrdered { return NewCamp(4096, WithPrecision(PrecisionInf)) }},
		{name: "gds", mk: func() evictionOrdered { return NewGDS(4096) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.mk()
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("k%03d", rng.Intn(300))
				if rng.Intn(3) == 0 {
					p.Get(key)
				} else {
					p.Set(key, int64(20+rng.Intn(60)), int64(1+rng.Intn(1000)))
				}
			}
			if p.Len() == 0 {
				t.Fatal("degenerate workload: nothing resident")
			}
			var predicted []string
			p.VisitEvictionOrder(func(e cache.Entry) bool {
				predicted = append(predicted, e.Key)
				return true
			})
			if len(predicted) != p.Len() {
				t.Fatalf("visited %d entries, %d resident", len(predicted), p.Len())
			}
			for i := 0; ; i++ {
				victim, ok := p.EvictOne()
				if !ok {
					if i != len(predicted) {
						t.Fatalf("drained %d entries, predicted %d", i, len(predicted))
					}
					break
				}
				if victim.Key != predicted[i] {
					t.Fatalf("eviction %d: drained %q, predicted %q", i, victim.Key, predicted[i])
				}
			}
		})
	}
}

// TestVisitEvictionOrderEarlyStop checks the visitor honors a false return.
func TestVisitEvictionOrderEarlyStop(t *testing.T) {
	p := NewCamp(4096)
	for i := 0; i < 20; i++ {
		p.Set(fmt.Sprintf("k%d", i), 10, int64(i+1))
	}
	n := 0
	p.VisitEvictionOrder(func(cache.Entry) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d entries after early stop, want 5", n)
	}
}
