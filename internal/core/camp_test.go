package core

import (
	"fmt"
	"math/rand"
	"testing"

	"camp/internal/cache"
	"camp/internal/rounding"
)

func TestCampBasicHitMiss(t *testing.T) {
	c := NewCamp(100)
	if c.Get("a") {
		t.Fatal("empty cache should miss")
	}
	if !c.Set("a", 10, 5) {
		t.Fatal("Set should succeed")
	}
	if !c.Get("a") {
		t.Fatal("expected hit")
	}
	e, ok := c.Peek("a")
	if !ok || e.Size != 10 || e.Cost != 5 {
		t.Fatalf("Peek = %+v", e)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Sets != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if c.Name() != "camp" || c.Precision() != DefaultPrecision {
		t.Fatalf("Name/Precision = %s/%d", c.Name(), c.Precision())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCampEvictsLowestCostToSize is the core behavioral contract: with equal
// recency, the item with the lowest cost-to-size ratio goes first.
func TestCampEvictsLowestCostToSize(t *testing.T) {
	c := NewCamp(30)
	var evicted []string
	c.SetEvictFunc(func(e cache.Entry) { evicted = append(evicted, e.Key) })
	c.Set("cheap", 10, 1)       // ratio 0.1
	c.Set("mid", 10, 100)       // ratio 10
	c.Set("expensive", 10, 500) // ratio 50
	c.Set("new", 10, 100)       // forces one eviction
	if len(evicted) != 1 || evicted[0] != "cheap" {
		t.Fatalf("evicted %v, want [cheap]", evicted)
	}
	// Another insert evicts mid (lowest remaining ratio), not expensive.
	c.Set("new2", 10, 100)
	if len(evicted) != 2 || evicted[1] != "mid" {
		t.Fatalf("evicted %v, want [cheap mid]", evicted)
	}
	if !c.Contains("expensive") {
		t.Fatal("expensive item must survive")
	}
}

// TestCampSizeMatters: between items of equal cost, the larger one has the
// smaller cost-to-size ratio and is evicted first (Figure 7's effect).
func TestCampSizeMatters(t *testing.T) {
	c := NewCamp(300)
	var evicted []string
	c.SetEvictFunc(func(e cache.Entry) { evicted = append(evicted, e.Key) })
	c.Set("big", 200, 100)  // ratio 0.5
	c.Set("small", 20, 100) // ratio 5
	c.Set("filler", 100, 100)
	if len(evicted) != 1 || evicted[0] != "big" {
		t.Fatalf("evicted %v, want [big]", evicted)
	}
}

// TestCampLRUTieBreak: items in the same queue (same rounded ratio) are
// evicted in LRU order (§2: CAMP breaks ties by LRU).
func TestCampLRUTieBreak(t *testing.T) {
	c := NewCamp(30)
	var evicted []string
	c.SetEvictFunc(func(e cache.Entry) { evicted = append(evicted, e.Key) })
	c.Set("a", 10, 50)
	c.Set("b", 10, 50)
	c.Set("c", 10, 50)
	c.Get("a") // a most recent; b is LRU within the queue
	c.Set("d", 10, 50)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	c.Set("e", 10, 50)
	if len(evicted) != 2 || evicted[1] != "c" {
		t.Fatalf("evicted %v, want [b c]", evicted)
	}
}

// TestCampAging verifies §1's robustness claim: an aged expensive key-value
// pair does not occupy memory indefinitely; it is evicted as competing
// applications issue more requests.
func TestCampAging(t *testing.T) {
	c := NewCamp(10)
	c.Set("gold", 1, 10000)
	// A first wave of cheap traffic must NOT dislodge the expensive item
	// (unlike LRU, which would evict it after 10 inserts).
	for i := 0; i < 500; i++ {
		c.Set(fmt.Sprintf("wave1-%d", i), 1, 1)
	}
	if !c.Contains("gold") {
		t.Fatal("expensive item evicted far too early")
	}
	// Sustained cheap traffic inflates L past gold's priority; eventually
	// gold must fall out.
	for i := 0; i < 100000 && c.Contains("gold"); i++ {
		c.Set(fmt.Sprintf("wave2-%d", i), 1, 1)
	}
	if c.Contains("gold") {
		t.Fatal("aged expensive item should eventually be evicted")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCampZeroCostEvictedFirst: zero-cost items occupy the 0 bucket at
// priority L and are the first victims, despite being the newest.
func TestCampZeroCostEvictedFirst(t *testing.T) {
	c := NewCamp(30)
	var evicted []string
	c.SetEvictFunc(func(e cache.Entry) { evicted = append(evicted, e.Key) })
	c.Set("paid", 10, 10)
	c.Set("paid2", 10, 10)
	c.Set("free", 10, 0)
	c.Set("x", 10, 10)
	if len(evicted) != 1 || evicted[0] != "free" {
		t.Fatalf("evicted %v, want [free]", evicted)
	}
}

// TestCampZeroCostTouchTiesWithMinimum documents the Algorithm 1 line-2
// subtlety: touching a zero-cost item lifts L to the minimum priority of the
// other items, so the touched item ties with the cheapest resident and the
// tie breaks by LRU (the older paid item goes first).
func TestCampZeroCostTouchTiesWithMinimum(t *testing.T) {
	c := NewCamp(30)
	var evicted []string
	c.SetEvictFunc(func(e cache.Entry) { evicted = append(evicted, e.Key) })
	c.Set("paid", 10, 10)
	c.Set("free", 10, 0)
	c.Set("paid2", 10, 10)
	c.Get("free") // free: H = L(=10) + 0 = 10, newest seq
	c.Set("x", 10, 10)
	if len(evicted) != 1 || evicted[0] != "paid" {
		t.Fatalf("evicted %v, want [paid] (oldest of the H=10 tie)", evicted)
	}
}

func TestCampRejectTooLarge(t *testing.T) {
	c := NewCamp(10)
	if c.Set("big", 11, 1) {
		t.Fatal("item larger than capacity must be rejected")
	}
	if c.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d", c.Stats().Rejected)
	}
	if !c.Set("fit", 10, 1) {
		t.Fatal("exact-capacity item should fit")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCampDelete(t *testing.T) {
	c := NewCamp(100)
	c.Set("a", 10, 1)
	c.Set("b", 10, 100)
	var evictions int
	c.SetEvictFunc(func(cache.Entry) { evictions++ })
	if !c.Delete("a") || c.Delete("a") {
		t.Fatal("Delete semantics broken")
	}
	if evictions != 0 {
		t.Fatal("Delete must not fire eviction callback")
	}
	if c.Len() != 1 || c.Used() != 10 {
		t.Fatalf("Len=%d Used=%d", c.Len(), c.Used())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCampUpdateChangesBucket(t *testing.T) {
	c := NewCamp(100)
	c.Set("a", 10, 10)
	q1 := c.QueueCount()
	if q1 != 1 {
		t.Fatalf("QueueCount = %d, want 1", q1)
	}
	// Same key, radically different cost: moves to a different queue.
	c.Set("a", 10, 100000)
	if c.QueueCount() != 1 {
		t.Fatalf("QueueCount = %d, want 1 (old queue deleted)", c.QueueCount())
	}
	if c.Stats().Updates != 1 {
		t.Fatalf("Updates = %d, want 1", c.Stats().Updates)
	}
	if c.Len() != 1 || c.Used() != 10 {
		t.Fatalf("Len=%d Used=%d", c.Len(), c.Used())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCampUpdateGrowDoesNotEvictSelf(t *testing.T) {
	c := NewCamp(30)
	c.Set("a", 10, 100)
	c.Set("b", 10, 1)
	// Growing a to 25 bytes exceeds capacity with b resident (10+25>30),
	// so b must be evicted — never a itself.
	if !c.Set("a", 25, 100) {
		t.Fatal("grow should succeed")
	}
	if !c.Contains("a") || c.Contains("b") {
		t.Fatal("growing a should evict b, never a itself")
	}
	if c.Used() != 25 {
		t.Fatalf("Used = %d, want 25", c.Used())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCampQueueCountBound(t *testing.T) {
	// Costs 1..1000 with size 1: integer ratios span 1..1000. With
	// precision p the number of queues must respect Proposition 2.
	for _, p := range []uint{1, 2, 3, 5} {
		c := NewCamp(1<<40, WithPrecision(p))
		for i := 1; i <= 1000; i++ {
			c.Set(fmt.Sprintf("k%d", i), 1, int64(i))
		}
		bound := rounding.DistinctValuesBound(1000, p)
		if got := uint64(c.QueueCount()); got > bound {
			t.Fatalf("p=%d: %d queues exceeds Proposition 2 bound %d", p, got, bound)
		}
		if c.MaxQueueCount() < c.QueueCount() {
			t.Fatalf("p=%d: MaxQueueCount %d < QueueCount %d", p, c.MaxQueueCount(), c.QueueCount())
		}
	}
	// Lower precision must not create more queues than higher precision.
	counts := make(map[uint]int)
	for _, p := range []uint{1, 3, 8} {
		c := NewCamp(1<<40, WithPrecision(p))
		for i := 1; i <= 1000; i++ {
			c.Set(fmt.Sprintf("k%d", i), 1, int64(i))
		}
		counts[p] = c.QueueCount()
	}
	if counts[1] > counts[3] || counts[3] > counts[8] {
		t.Fatalf("queue counts should grow with precision: %v", counts)
	}
}

func TestCampZeroAndNegativeCapacity(t *testing.T) {
	c := NewCamp(0)
	if c.Set("a", 1, 1) {
		t.Fatal("nothing fits in zero capacity")
	}
	neg := NewCamp(-1)
	if neg.Capacity() != 0 {
		t.Fatalf("Capacity = %d, want 0", neg.Capacity())
	}
}

func TestSatAdd(t *testing.T) {
	max := ^uint64(0)
	tests := []struct{ a, b, want uint64 }{
		{a: 1, b: 2, want: 3},
		{a: max, b: 0, want: max},
		{a: max, b: 1, want: max},
		{a: max - 5, b: 10, want: max},
		{a: 1 << 63, b: 1 << 63, want: max},
	}
	for _, tt := range tests {
		if got := satAdd(tt.a, tt.b); got != tt.want {
			t.Errorf("satAdd(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

// ---------------------------------------------------------------------------
// Reference model: an independent, O(n)-per-op reimplementation of CAMP's
// semantics (integerized+rounded ratios, L raised to the minimum priority of
// the other items on hits and of the remaining items after evictions,
// eviction of the globally minimum (H, seq) item). The real implementation
// must match it operation for operation.
// ---------------------------------------------------------------------------

type modelItem struct {
	key        string
	size, cost int64
	bucket     uint64
	h          uint64
	seq        uint64
}

type campModel struct {
	capacity, used int64
	precision      uint
	conv           rounding.Converter
	l, seq         uint64
	items          map[string]*modelItem
	evicted        []string
}

func newCampModel(capacity int64, precision uint) *campModel {
	return &campModel{capacity: capacity, precision: precision, items: make(map[string]*modelItem)}
}

func (m *campModel) minOver(skip string) (uint64, *modelItem) {
	var best *modelItem
	for k, it := range m.items {
		if k == skip {
			continue
		}
		if best == nil || it.h < best.h || (it.h == best.h && it.seq < best.seq) {
			best = it
		}
	}
	if best == nil {
		return 0, nil
	}
	return best.h, best
}

func (m *campModel) raiseL(skip string) {
	if h, it := m.minOver(skip); it != nil && h > m.l {
		m.l = h
	}
}

func (m *campModel) get(key string) bool {
	it, ok := m.items[key]
	if !ok {
		return false
	}
	m.raiseL(key)
	it.h = satAdd(m.l, it.bucket)
	m.seq++
	it.seq = m.seq
	return true
}

func (m *campModel) set(key string, size, cost int64) bool {
	if size < 0 {
		size = 0
	}
	if old, ok := m.items[key]; ok {
		m.used -= old.size
		delete(m.items, key)
	}
	if size > m.capacity {
		return false
	}
	for m.used+size > m.capacity {
		_, victim := m.minOver("")
		if victim == nil {
			return false
		}
		delete(m.items, victim.key)
		m.used -= victim.size
		m.evicted = append(m.evicted, victim.key)
		m.raiseL("")
	}
	bucket := rounding.Round(m.conv.IntRatio(cost, size), m.precision)
	m.seq++
	m.items[key] = &modelItem{
		key: key, size: size, cost: cost,
		bucket: bucket, h: satAdd(m.l, bucket), seq: m.seq,
	}
	m.used += size
	return true
}

func (m *campModel) delete(key string) bool {
	it, ok := m.items[key]
	if !ok {
		return false
	}
	m.used -= it.size
	delete(m.items, key)
	return true
}

// TestCampMatchesModel drives random workloads through CAMP and the model
// and requires identical hits, residency, eviction sequences, byte
// accounting and invariants at every step.
func TestCampMatchesModel(t *testing.T) {
	for _, p := range []uint{1, 3, DefaultPrecision, PrecisionInf} {
		p := p
		t.Run(fmt.Sprintf("precision=%d", p), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + p)))
			c := NewCamp(400, WithPrecision(p))
			m := newCampModel(400, p)
			var evicted []string
			c.SetEvictFunc(func(e cache.Entry) { evicted = append(evicted, e.Key) })

			costs := []int64{0, 1, 7, 100, 3000, 10000}
			for op := 0; op < 30000; op++ {
				key := fmt.Sprintf("k%d", rng.Intn(50))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5:
					if got, want := c.Get(key), m.get(key); got != want {
						t.Fatalf("op %d: Get(%s) = %v, model %v", op, key, got, want)
					}
				case 6, 7, 8:
					size := int64(rng.Intn(80) + 1)
					cost := costs[rng.Intn(len(costs))]
					if got, want := c.Set(key, size, cost), m.set(key, size, cost); got != want {
						t.Fatalf("op %d: Set(%s,%d,%d) = %v, model %v", op, key, size, cost, got, want)
					}
				default:
					if got, want := c.Delete(key), m.delete(key); got != want {
						t.Fatalf("op %d: Delete(%s) = %v, model %v", op, key, got, want)
					}
				}
				if c.Used() != m.used || c.Len() != len(m.items) {
					t.Fatalf("op %d: Used/Len = %d/%d, model %d/%d", op, c.Used(), c.Len(), m.used, len(m.items))
				}
				if c.L() != m.l {
					t.Fatalf("op %d: L = %d, model %d", op, c.L(), m.l)
				}
				if op%97 == 0 {
					if err := c.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if len(evicted) != len(m.evicted) {
				t.Fatalf("%d evictions, model %d", len(evicted), len(m.evicted))
			}
			for i := range evicted {
				if evicted[i] != m.evicted[i] {
					t.Fatalf("eviction %d: %s, model %s", i, evicted[i], m.evicted[i])
				}
			}
			for k := range m.items {
				if !c.Contains(k) {
					t.Fatalf("model has %s, cache does not", k)
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCampHeapArityOption exercises non-default arities end to end.
func TestCampHeapArityOption(t *testing.T) {
	for _, d := range []int{2, 4, 8} {
		c := NewCamp(1000, WithHeapArity(d))
		rng := rand.New(rand.NewSource(5))
		for op := 0; op < 5000; op++ {
			key := fmt.Sprintf("k%d", rng.Intn(40))
			if rng.Intn(2) == 0 {
				c.Get(key)
			} else {
				c.Set(key, int64(rng.Intn(50)+1), int64(rng.Intn(1000)))
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("arity %d: %v", d, err)
		}
	}
}

// TestCampFarFewerHeapOpsThanGDS verifies the efficiency claim of §2: CAMP
// touches its heap only when a queue head changes, so on a skewed workload
// it performs a small fraction of GDS's heap updates and node visits.
func TestCampFarFewerHeapOpsThanGDS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewCamp(5000)
	g := NewGDS(5000)
	costs := []int64{1, 100, 10000}
	for op := 0; op < 50000; op++ {
		// Skewed key popularity: 70% of requests to 20% of keys.
		var key string
		if rng.Float64() < 0.7 {
			key = fmt.Sprintf("hot%d", rng.Intn(40))
		} else {
			key = fmt.Sprintf("cold%d", rng.Intn(160))
		}
		// Equal sizes yield exactly three ratio buckets, so queue heads
		// change rarely; this is the regime Figure 1b illustrates.
		size := int64(10)
		cost := costs[rng.Intn(len(costs))]
		if !c.Get(key) {
			c.Set(key, size, cost)
		}
		if !g.Get(key) {
			g.Set(key, size, cost)
		}
	}
	if c.HeapUpdates()*2 >= g.HeapUpdates() {
		t.Fatalf("CAMP heap updates %d not far below GDS %d", c.HeapUpdates(), g.HeapUpdates())
	}
	if c.HeapVisits()*2 >= g.HeapVisits() {
		t.Fatalf("CAMP heap visits %d not far below GDS %d", c.HeapVisits(), g.HeapVisits())
	}
	c.ResetHeapVisits()
	if c.HeapVisits() != 0 {
		t.Fatal("ResetHeapVisits should zero the counter")
	}
}

// TestCampApproximatesGDS compares aggregate cost-miss behavior of CAMP at
// several precisions against GDS on a skewed trace (Figure 5a's claim:
// almost no degradation at low precision).
func TestCampApproximatesGDS(t *testing.T) {
	type req struct {
		key  string
		size int64
		cost int64
	}
	rng := rand.New(rand.NewSource(77))
	costs := []int64{1, 100, 10000}
	keyMeta := make(map[string]req)
	var reqs []req
	for i := 0; i < 60000; i++ {
		var key string
		if rng.Float64() < 0.7 {
			key = fmt.Sprintf("hot%d", rng.Intn(60))
		} else {
			key = fmt.Sprintf("cold%d", rng.Intn(240))
		}
		meta, ok := keyMeta[key]
		if !ok {
			meta = req{key: key, size: int64(rng.Intn(90) + 10), cost: costs[rng.Intn(3)]}
			keyMeta[key] = meta
		}
		reqs = append(reqs, meta)
	}

	run := func(p cache.Policy) float64 {
		seen := make(map[string]bool)
		var missCost, totalCost int64
		for _, r := range reqs {
			cold := !seen[r.key]
			seen[r.key] = true
			hit := p.Get(r.key)
			if !hit {
				p.Set(r.key, r.size, r.cost)
			}
			if cold {
				continue
			}
			totalCost += r.cost
			if !hit {
				missCost += r.cost
			}
		}
		return float64(missCost) / float64(totalCost)
	}

	gds := run(NewGDS(4000))
	for _, p := range []uint{1, 2, 5, PrecisionInf} {
		camp := run(NewCamp(4000, WithPrecision(p)))
		diff := camp - gds
		if diff < 0 {
			diff = -diff
		}
		// Figure 5a: almost no variation across precisions.
		if diff > 0.05 {
			t.Errorf("precision %d: cost-miss %.4f vs GDS %.4f (diff %.4f > 0.05)", p, camp, gds, diff)
		}
	}
}
