package core

import (
	"fmt"
	"math/rand"
	"testing"

	"camp/internal/cache"
)

func TestGDSBasicHitMiss(t *testing.T) {
	g := NewGDS(100)
	if g.Get("a") {
		t.Fatal("empty cache should miss")
	}
	if !g.Set("a", 10, 5) {
		t.Fatal("Set should succeed")
	}
	if !g.Get("a") {
		t.Fatal("expected hit")
	}
	if g.Name() != "gds" {
		t.Fatalf("Name = %s", g.Name())
	}
	s := g.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Sets != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGDSHFormula checks H(p) = L + cost/size and the eviction rule of
// Algorithm 1 on a hand-computed scenario.
func TestGDSHFormula(t *testing.T) {
	g := NewGDS(20)
	var evicted []string
	g.SetEvictFunc(func(e cache.Entry) { evicted = append(evicted, e.Key) })
	g.Set("a", 10, 10) // H = 0 + 1
	g.Set("b", 10, 50) // H = 0 + 5
	if g.L() != 0 {
		t.Fatalf("L = %v, want 0 before any eviction", g.L())
	}
	g.Set("c", 10, 100) // evicts a (H=1); L rises to min remaining = 5; H(c)=15
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted %v, want [a]", evicted)
	}
	if g.L() != 5 {
		t.Fatalf("L = %v, want 5 (minimum of the remaining items)", g.L())
	}
	g.Set("d", 10, 10) // evicts b (H=5); L -> 15; H(d) = 16
	if len(evicted) != 2 || evicted[1] != "b" {
		t.Fatalf("evicted %v, want [a b]", evicted)
	}
	if g.L() != 15 {
		t.Fatalf("L = %v, want 15", g.L())
	}
	// d (H=16) is now the minimum, not c (H=15)? No: c has H=15 < 16, so
	// the next eviction takes c even though d is older.
	g.Set("e", 10, 1000)
	if len(evicted) != 3 || evicted[2] != "c" {
		t.Fatalf("evicted %v, want [a b c]", evicted)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGDSHitDelaysEviction verifies the core Greedy-Dual property: a hit
// re-inflates the item's priority to L + ratio, postponing its eviction.
func TestGDSHitDelaysEviction(t *testing.T) {
	g := NewGDS(20)
	g.Set("a", 10, 10)
	g.Set("b", 10, 10)
	g.Get("a") // both same ratio; a now strictly fresher
	var evicted []string
	g.SetEvictFunc(func(e cache.Entry) { evicted = append(evicted, e.Key) })
	g.Set("c", 10, 10)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
}

func TestGDSLMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGDS(500)
	prev := g.L()
	for op := 0; op < 20000; op++ {
		key := fmt.Sprintf("k%d", rng.Intn(60))
		if rng.Intn(2) == 0 {
			g.Get(key)
		} else {
			g.Set(key, int64(rng.Intn(50)+1), int64(rng.Intn(10000)))
		}
		if l := g.L(); l < prev {
			t.Fatalf("op %d: L decreased from %v to %v", op, prev, l)
		} else {
			prev = l
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGDSDeleteUpdateReject(t *testing.T) {
	g := NewGDS(30)
	g.Set("a", 10, 1)
	if !g.Delete("a") || g.Delete("a") {
		t.Fatal("Delete semantics broken")
	}
	g.Set("b", 10, 1)
	if !g.Set("b", 20, 5) {
		t.Fatal("update should succeed")
	}
	e, _ := g.Peek("b")
	if e.Size != 20 || e.Cost != 5 {
		t.Fatalf("Peek = %+v", e)
	}
	if g.Stats().Updates != 1 {
		t.Fatalf("Updates = %d", g.Stats().Updates)
	}
	if g.Set("huge", 31, 1) {
		t.Fatal("too-large item must be rejected")
	}
	if g.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d", g.Stats().Rejected)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// gdsModel is an O(n) reference implementation of Algorithm 1.
type gdsModel struct {
	capacity, used int64
	l              float64
	seq            uint64
	items          map[string]*gdsModelItem
	evicted        []string
}

type gdsModelItem struct {
	key        string
	size, cost int64
	h          float64
	seq        uint64
}

func newGDSModel(capacity int64) *gdsModel {
	return &gdsModel{capacity: capacity, items: make(map[string]*gdsModelItem)}
}

func (m *gdsModel) min(skip string) *gdsModelItem {
	var best *gdsModelItem
	for k, it := range m.items {
		if k == skip {
			continue
		}
		if best == nil || it.h < best.h || (it.h == best.h && it.seq < best.seq) {
			best = it
		}
	}
	return best
}

func (m *gdsModel) get(key string) bool {
	it, ok := m.items[key]
	if !ok {
		return false
	}
	if min := m.min(key); min != nil && min.h > m.l {
		m.l = min.h
	}
	it.h = m.l + ratio(it.cost, it.size)
	m.seq++
	it.seq = m.seq
	return true
}

func (m *gdsModel) set(key string, size, cost int64) bool {
	if size < 0 {
		size = 0
	}
	if old, ok := m.items[key]; ok {
		m.used -= old.size
		delete(m.items, key)
	}
	if size > m.capacity {
		return false
	}
	for m.used+size > m.capacity {
		victim := m.min("")
		if victim == nil {
			return false
		}
		delete(m.items, victim.key)
		m.used -= victim.size
		m.evicted = append(m.evicted, victim.key)
		if min := m.min(""); min != nil && min.h > m.l {
			m.l = min.h
		}
	}
	m.seq++
	m.items[key] = &gdsModelItem{key: key, size: size, cost: cost, h: m.l + ratio(cost, size), seq: m.seq}
	m.used += size
	return true
}

// TestGDSMatchesModel cross-validates GDS against the naive model.
func TestGDSMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	g := NewGDS(400)
	m := newGDSModel(400)
	var evicted []string
	g.SetEvictFunc(func(e cache.Entry) { evicted = append(evicted, e.Key) })
	costs := []int64{0, 1, 100, 10000}
	for op := 0; op < 30000; op++ {
		key := fmt.Sprintf("k%d", rng.Intn(50))
		if rng.Intn(2) == 0 {
			if got, want := g.Get(key), m.get(key); got != want {
				t.Fatalf("op %d: Get(%s) = %v, model %v", op, key, got, want)
			}
		} else {
			size := int64(rng.Intn(80) + 1)
			cost := costs[rng.Intn(len(costs))]
			if got, want := g.Set(key, size, cost), m.set(key, size, cost); got != want {
				t.Fatalf("op %d: Set(%s) = %v, model %v", op, key, got, want)
			}
		}
		if g.Used() != m.used || g.Len() != len(m.items) {
			t.Fatalf("op %d: Used/Len = %d/%d, model %d/%d", op, g.Used(), g.Len(), m.used, len(m.items))
		}
		if g.L() != m.l {
			t.Fatalf("op %d: L = %v, model %v", op, g.L(), m.l)
		}
		if op%101 == 0 {
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if len(evicted) != len(m.evicted) {
		t.Fatalf("%d evictions, model %d", len(evicted), len(m.evicted))
	}
	for i := range evicted {
		if evicted[i] != m.evicted[i] {
			t.Fatalf("eviction %d: %s, model %s", i, evicted[i], m.evicted[i])
		}
	}
}

// TestFig4VisitTrends reproduces the Figure 4 trends at unit-test scale on a
// skewed workload: with the textbook delete path (the paper's regime),
// GDS's per-operation heap visits grow with cache size while CAMP's shrink,
// and CAMP visits a small fraction of GDS's nodes in either mode.
func TestFig4VisitTrends(t *testing.T) {
	perOp := func(capacity int64, textbook bool) (gdsVisits, campVisits float64) {
		rng := rand.New(rand.NewSource(9))
		var g *GDS
		if textbook {
			g = NewGDS(capacity, WithTextbookDelete())
		} else {
			g = NewGDS(capacity)
		}
		c := NewCamp(capacity)
		costs := []int64{1, 100, 10000}
		const ops = 30000
		for op := 0; op < ops; op++ {
			var key string
			if rng.Float64() < 0.7 {
				key = fmt.Sprintf("hot%d", rng.Intn(1000))
			} else {
				key = fmt.Sprintf("cold%d", rng.Intn(4000))
			}
			cost := costs[rng.Intn(3)]
			if !g.Get(key) {
				g.Set(key, 10, cost)
			}
			if !c.Get(key) {
				c.Set(key, 10, cost)
			}
		}
		return float64(g.HeapVisits()) / ops, float64(c.HeapVisits()) / ops
	}
	gSmall, cSmall := perOp(2000, true)
	gLarge, cLarge := perOp(40000, true)
	if gLarge <= gSmall {
		t.Errorf("textbook GDS visits/op should grow with cache size: small=%.2f large=%.2f", gSmall, gLarge)
	}
	if cLarge >= cSmall {
		t.Errorf("CAMP visits/op should shrink with cache size: small=%.2f large=%.2f", cSmall, cLarge)
	}
	if cSmall*4 >= gSmall || cLarge*4 >= gLarge {
		t.Errorf("CAMP should visit a small fraction of GDS's nodes: camp=%.2f/%.2f gds=%.2f/%.2f",
			cSmall, cLarge, gSmall, gLarge)
	}
	// The optimized replace-with-last delete still leaves CAMP far ahead.
	gOpt, cOpt := perOp(20000, false)
	if cOpt*4 >= gOpt {
		t.Errorf("CAMP (%.2f) should beat even optimized GDS (%.2f)", cOpt, gOpt)
	}
}
