package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestClassicLUpdateInvariants: the classic (evicted-H) L rule preserves
// every structural invariant, including Proposition 1.
func TestClassicLUpdateInvariants(t *testing.T) {
	c := NewCamp(500, WithClassicLUpdate())
	rng := rand.New(rand.NewSource(61))
	costs := []int64{0, 1, 100, 10000}
	prevL := c.L()
	for op := 0; op < 30000; op++ {
		key := fmt.Sprintf("k%d", rng.Intn(60))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			c.Get(key)
		case 6, 7, 8:
			c.Set(key, int64(rng.Intn(60)+1), costs[rng.Intn(len(costs))])
		default:
			c.Delete(key)
		}
		if l := c.L(); l < prevL {
			t.Fatalf("op %d: L decreased %d -> %d", op, prevL, l)
		} else {
			prevL = l
		}
		if op%199 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
}

// TestLUpdateRulesComparable: the two L-update rules produce cost-miss
// ratios in the same ballpark on a skewed trace — the rule is a constant-
// factor detail, not a behavioral fork.
func TestLUpdateRulesComparable(t *testing.T) {
	run := func(opts ...Option) float64 {
		c := NewCamp(4000, opts...)
		rng := rand.New(rand.NewSource(88))
		costs := []int64{1, 100, 10000}
		type meta struct{ size, cost int64 }
		metas := map[string]meta{}
		seen := map[string]bool{}
		var missCost, totalCost int64
		for i := 0; i < 60000; i++ {
			var key string
			if rng.Float64() < 0.7 {
				key = fmt.Sprintf("h%d", rng.Intn(60))
			} else {
				key = fmt.Sprintf("c%d", rng.Intn(240))
			}
			m, ok := metas[key]
			if !ok {
				m = meta{size: int64(rng.Intn(90) + 10), cost: costs[rng.Intn(3)]}
				metas[key] = m
			}
			hit := c.Get(key)
			if !hit {
				c.Set(key, m.size, m.cost)
			}
			if seen[key] {
				totalCost += m.cost
				if !hit {
					missCost += m.cost
				}
			}
			seen[key] = true
		}
		return float64(missCost) / float64(totalCost)
	}
	paper := run()
	classic := run(WithClassicLUpdate())
	diff := paper - classic
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.1 {
		t.Fatalf("L-update rules diverge too much: paper=%.4f classic=%.4f", paper, classic)
	}
}
