package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"camp/internal/rounding"
)

// TestQuickBucketMonotone: for a fixed size, a higher cost never maps to a
// lower queue bucket — CAMP's rounding preserves the cost order.
func TestQuickBucketMonotone(t *testing.T) {
	f := func(c1, c2 uint32, sz uint16, p uint8) bool {
		prec := uint(p%8) + 1
		size := int64(sz%1000) + 1
		camp := NewCamp(1<<40, WithPrecision(prec))
		// Fix the converter's max size first so both conversions use
		// the same multiplier.
		camp.conv.Observe(size)
		lo, hi := int64(c1%1e6), int64(c2%1e6)
		if lo > hi {
			lo, hi = hi, lo
		}
		b1 := camp.bucketFor(lo, size)
		b2 := camp.bucketFor(hi, size)
		return b1 <= b2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCampOpSequences drives CAMP with quick-generated operation
// sequences and validates the structural invariants after each batch.
func TestQuickCampOpSequences(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Size uint16
		Cost uint32
	}
	f := func(ops []op, precision uint8) bool {
		c := NewCamp(2000, WithPrecision(uint(precision%9)))
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%40)
			switch o.Kind % 3 {
			case 0:
				c.Get(key)
			case 1:
				c.Set(key, int64(o.Size%300), int64(o.Cost%100000))
			case 2:
				c.Delete(key)
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGDSNeverExceedsCapacity: GDS under arbitrary op sequences keeps
// its accounting invariants.
func TestQuickGDSOpSequences(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Size uint16
		Cost uint32
	}
	f := func(ops []op) bool {
		g := NewGDS(2000)
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%40)
			switch o.Kind % 3 {
			case 0:
				g.Get(key)
			case 1:
				g.Set(key, int64(o.Size%300), int64(o.Cost%100000))
			case 2:
				g.Delete(key)
			}
		}
		return g.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPrecisionDominance: on identical inputs, queue counts never
// decrease with precision (finer rounding -> at least as many buckets).
func TestQuickPrecisionDominance(t *testing.T) {
	f := func(costs []uint32) bool {
		if len(costs) == 0 {
			return true
		}
		counts := make([]int, 0, 3)
		for _, p := range []uint{1, 4, rounding.PrecisionInf} {
			c := NewCamp(1<<40, WithPrecision(p))
			for i, cost := range costs {
				c.Set(fmt.Sprintf("k%d", i), 10, int64(cost%1000000))
			}
			counts = append(counts, c.QueueCount())
		}
		// PrecisionInf (index 2) dominates p=4 dominates p=1.
		return counts[0] <= counts[1] && counts[1] <= counts[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
