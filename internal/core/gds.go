package core

import (
	"fmt"
	"math"
	"sort"

	"camp/internal/cache"
	"camp/internal/nheap"
)

// GDS is the Greedy-Dual-Size algorithm of Cao and Irani (USITS'97),
// implemented exactly as Algorithm 1 in the paper: every resident item sits
// in one priority queue keyed by H(p) = L + cost(p)/size(p), the minimum-H
// item is evicted, and L rises to the minimum H of the remaining items after
// each eviction (line 6) and to the minimum H among the other items on each
// hit (line 2).
//
// The heap holds every resident item, so each hit and each eviction performs
// an O(log n) heap update — the overhead CAMP eliminates. The heap counts
// visited nodes for the Figure 4 comparison.
type GDS struct {
	capacity int64
	used     int64

	items map[string]*gdsEntry
	heap  *nheap.Heap[*gdsEntry]

	l   float64 // the global offset L
	seq uint64  // FIFO tie-break counter

	stats          cache.Stats
	onEvict        cache.EvictFunc
	heapUpdates    uint64
	textbookDelete bool
}

type gdsEntry struct {
	key     string
	size    int64
	cost    int64
	h       float64
	seq     uint64 // FIFO tie-break for determinism
	heapIdx int
}

var _ cache.Policy = (*GDS)(nil)
var _ cache.VictimPeeker = (*GDS)(nil)
var _ cache.HeapVisitor = (*GDS)(nil)
var _ cache.PriorityOrdered = (*GDS)(nil)

// GDSOption configures a GDS policy.
type GDSOption func(*GDS)

// WithGDSHeapArity overrides the branching factor of the item heap
// (default 8, matching CAMP's heap for a fair Figure 4 comparison).
func WithGDSHeapArity(d int) GDSOption {
	return func(g *GDS) { g.heap = newGDSHeap(d) }
}

// WithTextbookDelete switches heap deletions to the classical
// bubble-to-root-then-pop method, which pays the full heap depth on every
// hit. This mode reproduces the rising GDS curve of Figure 4; the default
// replace-with-last deletion is cheaper and flattens that curve (see
// EXPERIMENTS.md).
func WithTextbookDelete() GDSOption {
	return func(g *GDS) { g.textbookDelete = true }
}

// NewGDS returns a GDS policy with the given byte capacity.
func NewGDS(capacity int64, opts ...GDSOption) *GDS {
	if capacity < 0 {
		capacity = 0
	}
	g := &GDS{
		capacity: capacity,
		items:    make(map[string]*gdsEntry),
		heap:     newGDSHeap(nheap.DefaultArity),
	}
	for _, o := range opts {
		o(g)
	}
	return g
}

func newGDSHeap(arity int) *nheap.Heap[*gdsEntry] {
	return nheap.New(
		func(a, b *gdsEntry) bool {
			if a.h != b.h {
				return a.h < b.h
			}
			return a.seq < b.seq
		},
		nheap.WithArity[*gdsEntry](arity),
		nheap.WithIndexTracking(func(e *gdsEntry, i int) { e.heapIdx = i }),
	)
}

// Name implements cache.Policy.
func (g *GDS) Name() string { return "gds" }

// L returns the current value of the global offset, for tests.
func (g *GDS) L() float64 { return g.l }

// Get implements cache.Policy.
func (g *GDS) Get(key string) bool {
	e, ok := g.items[key]
	if !ok {
		g.stats.Misses++
		return false
	}
	// Algorithm 1, line 2: L <- min over M \ {e}. Temporarily removing e
	// makes the heap minimum exactly that quantity.
	g.removeFromHeap(e)
	g.heapUpdates++
	if top, ok := g.heap.Peek(); ok && top.h > g.l {
		g.l = top.h
	}
	e.h = g.l + ratio(e.cost, e.size)
	e.seq = g.nextSeq()
	g.heap.Push(e)
	g.heapUpdates++
	g.stats.Hits++
	return true
}

// Set implements cache.Policy.
func (g *GDS) Set(key string, size, cost int64) bool {
	if size < 0 {
		size = 0
	}
	if e, ok := g.items[key]; ok {
		g.removeEntry(e)
		if !g.admit(key, size, cost) {
			g.stats.Rejected++
			return false
		}
		g.stats.Updates++
		return true
	}
	if !g.admit(key, size, cost) {
		g.stats.Rejected++
		return false
	}
	g.stats.Sets++
	return true
}

func (g *GDS) admit(key string, size, cost int64) bool {
	if size > g.capacity {
		return false
	}
	// Algorithm 1, lines 4-6.
	for g.used+size > g.capacity {
		if !g.evictOne() {
			return false
		}
	}
	// Lines 7-8.
	e := &gdsEntry{
		key:     key,
		size:    size,
		cost:    cost,
		h:       g.l + ratio(cost, size),
		seq:     g.nextSeq(),
		heapIdx: -1,
	}
	g.heap.Push(e)
	g.heapUpdates++
	g.items[key] = e
	g.used += size
	return true
}

func (g *GDS) evictOne() bool {
	_, ok := g.EvictOne()
	return ok
}

// EvictOne implements cache.Evicter: it pops the minimum-H item and lifts L
// to the minimum of the remaining items (Algorithm 1, lines 5-6).
func (g *GDS) EvictOne() (cache.Entry, bool) {
	if g.heap.Len() == 0 {
		return cache.Entry{}, false
	}
	victim := g.heap.Pop()
	g.heapUpdates++
	delete(g.items, victim.key)
	g.used -= victim.size
	victim.heapIdx = -1
	// Line 6: L <- min over the remaining items.
	if top, ok := g.heap.Peek(); ok && top.h > g.l {
		g.l = top.h
	}
	g.stats.Evictions++
	g.stats.EvictedBytes += uint64(victim.size)
	e := cache.Entry{Key: victim.key, Size: victim.size, Cost: victim.cost}
	if g.onEvict != nil {
		g.onEvict(e)
	}
	return e, true
}

// PeekVictim implements cache.VictimPeeker: the minimum-H item, with
// urgency H − L — the cost-per-byte value GDS would forfeit by evicting it.
func (g *GDS) PeekVictim() (cache.Entry, float64, bool) {
	top, ok := g.heap.Peek()
	if !ok {
		return cache.Entry{}, 0, false
	}
	e := cache.Entry{Key: top.key, Size: top.size, Cost: top.cost}
	return e, top.h - g.l, true
}

// Delete implements cache.Policy.
func (g *GDS) Delete(key string) bool {
	e, ok := g.items[key]
	if !ok {
		return false
	}
	g.removeEntry(e)
	return true
}

func (g *GDS) removeEntry(e *gdsEntry) {
	g.removeFromHeap(e)
	g.heapUpdates++
	delete(g.items, e.key)
	g.used -= e.size
}

func (g *GDS) removeFromHeap(e *gdsEntry) {
	if g.textbookDelete {
		g.heap.RemoveViaRoot(e.heapIdx)
		return
	}
	g.heap.Remove(e.heapIdx)
}

// Contains implements cache.Policy.
func (g *GDS) Contains(key string) bool {
	_, ok := g.items[key]
	return ok
}

// Peek implements cache.Policy.
func (g *GDS) Peek(key string) (cache.Entry, bool) {
	e, ok := g.items[key]
	if !ok {
		return cache.Entry{}, false
	}
	return cache.Entry{Key: e.key, Size: e.size, Cost: e.cost}, true
}

// Len implements cache.Policy.
func (g *GDS) Len() int { return len(g.items) }

// Used implements cache.Policy.
func (g *GDS) Used() int64 { return g.used }

// Capacity implements cache.Policy.
func (g *GDS) Capacity() int64 { return g.capacity }

// Stats implements cache.Policy.
func (g *GDS) Stats() cache.Stats { return g.stats }

// SetEvictFunc implements cache.Policy.
func (g *GDS) SetEvictFunc(fn cache.EvictFunc) { g.onEvict = fn }

// HeapVisits implements cache.HeapVisitor.
func (g *GDS) HeapVisits() uint64 { return g.heap.Visits() }

// ResetHeapVisits implements cache.HeapVisitor.
func (g *GDS) ResetHeapVisits() { g.heap.ResetVisits() }

// HeapUpdates returns the number of structural heap operations performed.
func (g *GDS) HeapUpdates() uint64 { return g.heapUpdates }

// VisitEvictionOrder implements cache.EvictionOrdered. Evictions never
// change a surviving item's H (only L moves), so sorting all residents by
// the heap's (H, seq) comparison yields the exact EvictOne sequence.
func (g *GDS) VisitEvictionOrder(visit func(cache.Entry) bool) {
	for _, e := range g.sortedEntries() {
		if !visit(cache.Entry{Key: e.key, Size: e.size, Cost: e.cost}) {
			return
		}
	}
}

// VisitEvictionPriority implements cache.PriorityOrdered. GDS priorities are
// floats, so the offset H − L travels as its IEEE-754 bits; subtraction by a
// shared L is weakly monotonic in float64, so replaying the offsets against
// a fresh L preserves the exact visitation order (ties that rounding may
// introduce fall back to insertion order, which is the visitation order).
// GDS has no queues, so the class is always zero.
func (g *GDS) VisitEvictionPriority(visit func(e cache.Entry, prio, class uint64) bool) {
	for _, e := range g.sortedEntries() {
		if !visit(cache.Entry{Key: e.key, Size: e.size, Cost: e.cost}, math.Float64bits(e.h-g.l), 0) {
			return
		}
	}
}

func (g *GDS) sortedEntries() []*gdsEntry {
	entries := make([]*gdsEntry, 0, len(g.items))
	for _, e := range g.items {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].h != entries[j].h {
			return entries[i].h < entries[j].h
		}
		return entries[i].seq < entries[j].seq
	})
	return entries
}

// SetWithPriority implements cache.PriorityOrdered: Set with the entry's
// priority pinned to H = L + the decoded offset (the class is ignored — GDS
// has no queues). Offsets that violate Algorithm 1's L ≤ H ≤ L + ratio
// bound — NaN, negative, or oversized bits from a corrupt snapshot — are
// clamped into it rather than trusted.
func (g *GDS) SetWithPriority(key string, size, cost int64, prio, _ uint64) bool {
	if size < 0 {
		size = 0
	}
	if e, ok := g.items[key]; ok {
		g.removeEntry(e)
		if !g.admitAt(key, size, cost, prio) {
			g.stats.Rejected++
			return false
		}
		g.stats.Updates++
		return true
	}
	if !g.admitAt(key, size, cost, prio) {
		g.stats.Rejected++
		return false
	}
	g.stats.Sets++
	return true
}

func (g *GDS) admitAt(key string, size, cost int64, prio uint64) bool {
	if size > g.capacity {
		return false
	}
	for g.used+size > g.capacity {
		if !g.evictOne() {
			return false
		}
	}
	off := math.Float64frombits(prio)
	r := ratio(cost, size)
	if math.IsNaN(off) || off < 0 {
		off = r
	} else if off > r {
		off = r
	}
	e := &gdsEntry{
		key:     key,
		size:    size,
		cost:    cost,
		h:       g.l + off,
		seq:     g.nextSeq(),
		heapIdx: -1,
	}
	g.heap.Push(e)
	g.heapUpdates++
	g.items[key] = e
	g.used += size
	return true
}

// CheckInvariants validates internal consistency, for tests.
func (g *GDS) CheckInvariants() error {
	if g.heap.Len() != len(g.items) {
		return fmt.Errorf("heap has %d items, map has %d", g.heap.Len(), len(g.items))
	}
	var bytes int64
	for key, e := range g.items {
		if e.key != key {
			return fmt.Errorf("entry registered under %q has key %q", key, e.key)
		}
		if e.heapIdx < 0 || e.heapIdx >= g.heap.Len() || g.heap.Items()[e.heapIdx] != e {
			return fmt.Errorf("entry %q heapIdx %d is stale", key, e.heapIdx)
		}
		if e.h < g.l {
			return fmt.Errorf("entry %q has H=%v below L=%v", key, e.h, g.l)
		}
		if e.h > g.l+ratio(e.cost, e.size)+1e-9 {
			return fmt.Errorf("entry %q has H=%v above L+ratio=%v", key, e.h, g.l+ratio(e.cost, e.size))
		}
		bytes += e.size
	}
	if bytes != g.used {
		return fmt.Errorf("accounted %d bytes, used=%d", bytes, g.used)
	}
	if g.used > g.capacity {
		return fmt.Errorf("used %d exceeds capacity %d", g.used, g.capacity)
	}
	if bad := g.heap.Verify(); bad != -1 {
		return fmt.Errorf("heap invariant violated at slot %d", bad)
	}
	return nil
}

func (g *GDS) nextSeq() uint64 {
	g.seq++
	return g.seq
}

func ratio(cost, size int64) float64 {
	if cost <= 0 {
		return 0
	}
	if size < 1 {
		size = 1
	}
	return float64(cost) / float64(size)
}
