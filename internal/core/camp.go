// Package core implements the paper's primary contribution — the Cost
// Adaptive Multi-queue eviction Policy (CAMP) — together with the
// Greedy-Dual-Size (GDS) reference algorithm it approximates.
//
// CAMP (§2 of the paper) maintains one LRU queue per rounded cost-to-size
// ratio plus a small d-ary heap over the queue heads. Because the global
// offset L only grows, items within a queue are automatically ordered by
// priority, so a hit is O(1) except in the rare case where the head of a
// queue changes; only then is the heap touched. Eviction pops the head of
// the heap-minimum queue. With precision p the eviction decisions are within
// a (1+2^(1-p)) factor of GDS's (Proposition 3), and with infinite precision
// they coincide with GDS over integerized ratios.
package core

import (
	"fmt"
	"math"

	"camp/internal/cache"
	"camp/internal/ilist"
	"camp/internal/nheap"
	"camp/internal/rounding"
)

// DefaultPrecision is the precision used throughout the paper's evaluation
// (Figures 5c, 5d, 6, 9 all fix p = 5).
const DefaultPrecision uint = 5

// PrecisionInf disables ratio rounding; CAMP then matches GDS on the
// integerized ratios (the "∞" curve in Figure 5a).
const PrecisionInf = rounding.PrecisionInf

// Camp is the CAMP eviction policy. It is not safe for concurrent use; wrap
// it (see cache.Sharded or the root camp package) for multi-threaded access.
type Camp struct {
	capacity  int64
	used      int64
	precision uint
	conv      rounding.Converter

	items  map[string]*campEntry
	queues map[uint64]*campQueue
	heap   *nheap.Heap[*campQueue]

	l        uint64 // the global GDS offset L; non-decreasing (Prop. 1)
	seq      uint64 // insertion sequence, breaks priority ties by LRU
	classicL bool   // L-update ablation: evicted-H instead of min-of-remaining

	stats        cache.Stats
	onEvict      cache.EvictFunc
	maxQueues    int
	heapUpdates  uint64 // pushes+pops+fixes+removes of the queue heap
	queueCreates uint64
}

type campEntry struct {
	key    string
	size   int64
	cost   int64
	bucket uint64 // rounded integer cost-to-size ratio == queue id
	h      uint64 // priority: L at last request + bucket
	seq    uint64 // request sequence at last touch (LRU tie-break)
	node   *ilist.Node[*campEntry]
}

// campQueue is one LRU queue holding every resident item that shares a
// rounded cost-to-size ratio. The head (front) has the smallest priority.
type campQueue struct {
	bucket  uint64
	list    *ilist.List[*campEntry]
	heapIdx int
}

func (q *campQueue) head() *campEntry { return q.list.Front().Value }

var _ cache.Policy = (*Camp)(nil)
var _ cache.VictimPeeker = (*Camp)(nil)
var _ cache.HeapVisitor = (*Camp)(nil)
var _ cache.QueueCounter = (*Camp)(nil)
var _ cache.PriorityOrdered = (*Camp)(nil)
var _ cache.PriorityScaled = (*Camp)(nil)

// Option configures a Camp policy.
type Option func(*Camp)

// WithPrecision sets the number of significant bits kept when rounding
// cost-to-size ratios. Lower precision means fewer queues; PrecisionInf
// disables rounding. The default is DefaultPrecision (5).
func WithPrecision(p uint) Option {
	return func(c *Camp) { c.precision = p }
}

// WithHeapArity overrides the branching factor of the queue-head heap.
// The paper uses an 8-ary implicit heap.
func WithHeapArity(d int) Option {
	return func(c *Camp) {
		c.heap = newQueueHeap(d)
	}
}

// WithClassicLUpdate switches the L bookkeeping to the original
// Cao-Irani GDS rule — L rises to the *evicted* item's priority, and hits
// do not touch L — instead of Algorithm 1's more aggressive
// min-of-the-remaining rule. Both preserve Proposition 1; this option
// exists as the DESIGN.md ablation of that design choice.
func WithClassicLUpdate() Option {
	return func(c *Camp) { c.classicL = true }
}

// NewCamp returns a CAMP policy with the given byte capacity.
func NewCamp(capacity int64, opts ...Option) *Camp {
	if capacity < 0 {
		capacity = 0
	}
	c := &Camp{
		capacity:  capacity,
		precision: DefaultPrecision,
		items:     make(map[string]*campEntry),
		queues:    make(map[uint64]*campQueue),
		heap:      newQueueHeap(nheap.DefaultArity),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func newQueueHeap(arity int) *nheap.Heap[*campQueue] {
	return nheap.New(
		func(a, b *campQueue) bool {
			ha, hb := a.head(), b.head()
			if ha.h != hb.h {
				return ha.h < hb.h
			}
			return ha.seq < hb.seq // ties broken by LRU (§2)
		},
		nheap.WithArity[*campQueue](arity),
		nheap.WithIndexTracking(func(q *campQueue, i int) { q.heapIdx = i }),
	)
}

// Name implements cache.Policy.
func (c *Camp) Name() string { return "camp" }

// Precision returns the configured rounding precision.
func (c *Camp) Precision() uint { return c.precision }

// L returns the current value of the global offset. It is exposed for tests
// and diagnostics.
func (c *Camp) L() uint64 { return c.l }

// Get implements cache.Policy. On a hit the item moves to the tail of its
// LRU queue with priority L' + ratio, where L' is the minimum priority among
// the other resident items (Algorithm 1, line 2).
func (c *Camp) Get(key string) bool {
	e, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return false
	}
	c.touch(e)
	c.stats.Hits++
	return true
}

// touch refreshes e's priority and recency. The heap is only updated when
// the head of e's queue changes or the queue appears/disappears — the key
// efficiency claim of §2.
func (c *Camp) touch(e *campEntry) {
	q := c.queues[e.bucket]
	wasHead := q.list.Front() == e.node
	onlyItem := q.list.Len() == 1

	q.list.Remove(e.node)
	switch {
	case onlyItem:
		c.heap.Remove(q.heapIdx)
		c.heapUpdates++
		delete(c.queues, e.bucket)
	case wasHead:
		// Head changed to a larger priority; restore heap order.
		c.heap.Fix(q.heapIdx)
		c.heapUpdates++
	}

	// L <- min over M \ {e} (the heap now excludes e in all cases where
	// e could have been the minimum). The classic rule leaves L alone on
	// hits.
	if !c.classicL {
		c.raiseL()
	}

	e.h = c.newPriority(e.bucket)
	c.seq++
	e.seq = c.seq

	dst, ok := c.queues[e.bucket]
	if !ok {
		dst = c.addQueue(e.bucket)
		dst.list.PushBackNode(e.node)
		c.heap.Push(dst)
		c.heapUpdates++
		return
	}
	// Appending at the tail never changes the head: no heap update.
	dst.list.PushBackNode(e.node)
}

// Set implements cache.Policy.
func (c *Camp) Set(key string, size, cost int64) bool {
	if size < 0 {
		size = 0
	}
	if e, ok := c.items[key]; ok {
		// Update in place: detach, then re-admit with the new
		// size/cost so eviction can never pick the entry itself.
		c.detach(e)
		if !c.admit(key, size, cost) {
			c.stats.Rejected++
			return false
		}
		c.stats.Updates++
		return true
	}
	if !c.admit(key, size, cost) {
		c.stats.Rejected++
		return false
	}
	c.stats.Sets++
	return true
}

// admit makes room for (key, size, cost) and links a fresh entry at the tail
// of its queue with priority L + rounded ratio.
func (c *Camp) admit(key string, size, cost int64) bool {
	if size > c.capacity {
		return false
	}
	for c.used+size > c.capacity {
		if !c.evictOne() {
			return false
		}
	}
	bucket := c.bucketFor(cost, size)
	e := &campEntry{key: key, size: size, cost: cost, bucket: bucket}
	e.node = &ilist.Node[*campEntry]{Value: e}
	e.h = c.newPriority(bucket)
	c.seq++
	e.seq = c.seq

	q, ok := c.queues[bucket]
	if !ok {
		q = c.addQueue(bucket)
		q.list.PushBackNode(e.node)
		c.heap.Push(q)
		c.heapUpdates++
	} else {
		prevHead := q.head()
		q.list.PushBackNode(e.node)
		// A tail insert can only change the head if the new item
		// sorts before it, which cannot happen because L is
		// non-decreasing; assert in debug builds via invariant tests.
		_ = prevHead
	}
	c.items[key] = e
	c.used += size
	return true
}

// evictOne removes the item with the (approximately) smallest priority: the
// head of the heap-minimum queue. After the eviction, L rises to the
// minimum priority of the remaining items (Algorithm 1, line 6).
func (c *Camp) evictOne() bool {
	_, ok := c.EvictOne()
	return ok
}

// EvictOne implements cache.Evicter: it evicts the head of the heap-minimum
// LRU queue and lifts L to the new minimum.
func (c *Camp) EvictOne() (cache.Entry, bool) {
	q, ok := c.heap.Peek()
	if !ok {
		return cache.Entry{}, false
	}
	victim := q.head()
	c.removeEntry(victim, q)
	if c.classicL {
		// Original GDS rule: L becomes the evicted item's priority.
		if victim.h > c.l {
			c.l = victim.h
		}
	} else {
		c.raiseL()
	}
	c.stats.Evictions++
	c.stats.EvictedBytes += uint64(victim.size)
	e := cache.Entry{Key: victim.key, Size: victim.size, Cost: victim.cost}
	if c.onEvict != nil {
		c.onEvict(e)
	}
	return e, true
}

// PeekVictim implements cache.VictimPeeker: the head of the heap-minimum
// LRU queue, with urgency H − L — the rounded cost-per-byte value the cache
// would forfeit by evicting it now.
func (c *Camp) PeekVictim() (cache.Entry, float64, bool) {
	q, ok := c.heap.Peek()
	if !ok {
		return cache.Entry{}, 0, false
	}
	victim := q.head()
	e := cache.Entry{Key: victim.key, Size: victim.size, Cost: victim.cost}
	return e, float64(victim.h - c.l), true
}

// Delete implements cache.Policy.
func (c *Camp) Delete(key string) bool {
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.detach(e)
	return true
}

// detach removes e from all structures without touching L or stats.
func (c *Camp) detach(e *campEntry) {
	c.removeEntry(e, c.queues[e.bucket])
}

func (c *Camp) removeEntry(e *campEntry, q *campQueue) {
	wasHead := q.list.Front() == e.node
	q.list.Remove(e.node)
	if q.list.Len() == 0 {
		c.heap.Remove(q.heapIdx)
		c.heapUpdates++
		delete(c.queues, q.bucket)
	} else if wasHead {
		c.heap.Fix(q.heapIdx)
		c.heapUpdates++
	}
	delete(c.items, e.key)
	c.used -= e.size
}

// Contains implements cache.Policy.
func (c *Camp) Contains(key string) bool {
	_, ok := c.items[key]
	return ok
}

// Peek implements cache.Policy.
func (c *Camp) Peek(key string) (cache.Entry, bool) {
	e, ok := c.items[key]
	if !ok {
		return cache.Entry{}, false
	}
	return cache.Entry{Key: e.key, Size: e.size, Cost: e.cost}, true
}

// Len implements cache.Policy.
func (c *Camp) Len() int { return len(c.items) }

// Used implements cache.Policy.
func (c *Camp) Used() int64 { return c.used }

// Capacity implements cache.Policy.
func (c *Camp) Capacity() int64 { return c.capacity }

// Stats implements cache.Policy.
func (c *Camp) Stats() cache.Stats { return c.stats }

// SetEvictFunc implements cache.Policy.
func (c *Camp) SetEvictFunc(fn cache.EvictFunc) { c.onEvict = fn }

// HeapVisits implements cache.HeapVisitor.
func (c *Camp) HeapVisits() uint64 { return c.heap.Visits() }

// ResetHeapVisits implements cache.HeapVisitor.
func (c *Camp) ResetHeapVisits() { c.heap.ResetVisits() }

// HeapUpdates returns how many structural heap operations (push, pop, fix,
// remove) CAMP has performed; compare with GDS, which performs one on every
// hit and every eviction.
func (c *Camp) HeapUpdates() uint64 { return c.heapUpdates }

// QueueCount implements cache.QueueCounter: the number of non-empty LRU
// queues, the Figure 5b / 8c metric.
func (c *Camp) QueueCount() int { return len(c.queues) }

// MaxQueueCount implements cache.QueueCounter.
func (c *Camp) MaxQueueCount() int { return c.maxQueues }

// bucketFor integerizes and rounds a cost-to-size ratio.
func (c *Camp) bucketFor(cost, size int64) uint64 {
	return rounding.Round(c.conv.IntRatio(cost, size), c.precision)
}

// PriorityScale implements cache.PriorityScaled: the ratio integerizer's
// adaptive scale (the largest size observed), which decides how fractional
// cost-to-size ratios map to integer queue ids. It is learned from the
// whole history — including evicted entries — so a snapshot must carry it
// for a restored policy to bucket future Sets exactly as the live one.
func (c *Camp) PriorityScale() uint64 { return uint64(c.conv.MaxSize()) }

// RestorePriorityScale implements cache.PriorityScaled. The scale only ever
// widens (Observe keeps the max), so corrupt small values are harmless and
// replay order does not matter.
func (c *Camp) RestorePriorityScale(scale uint64) {
	if scale > math.MaxInt64 {
		scale = math.MaxInt64
	}
	c.conv.Observe(int64(scale))
}

// newPriority computes H = L + bucket with saturating arithmetic. Reaching
// the saturation point requires ~2^63 accumulated priority, unreachable for
// realistic traces; if it ever happens, saturated items tie on H and fall
// back to pure LRU ordering via seq — a graceful degradation rather than a
// scrambled heap.
func (c *Camp) newPriority(bucket uint64) uint64 {
	return satAdd(c.l, bucket)
}

// satAdd returns a+b, saturating at the maximum uint64.
func satAdd(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return ^uint64(0)
	}
	return s
}

// raiseL lifts L to the minimum priority among resident queue heads. L never
// decreases (Proposition 1).
func (c *Camp) raiseL() {
	q, ok := c.heap.Peek()
	if !ok {
		return
	}
	if h := q.head().h; h > c.l {
		c.l = h
	}
}

func (c *Camp) addQueue(bucket uint64) *campQueue {
	q := &campQueue{bucket: bucket, list: ilist.New[*campEntry](), heapIdx: -1}
	c.queues[bucket] = q
	c.queueCreates++
	if len(c.queues) > c.maxQueues {
		c.maxQueues = len(c.queues)
	}
	return q
}

// VisitEvictionOrder implements cache.EvictionOrdered with a k-way merge
// over the per-ratio queues. Each queue is already in ascending (H, seq)
// order, and evicting an item never changes another item's priority (only L
// moves), so repeatedly taking the smallest (H, seq) among the queue fronts —
// the same comparison the queue-head heap uses — reproduces the exact
// sequence EvictOne would emit, without mutating anything.
func (c *Camp) VisitEvictionOrder(visit func(cache.Entry) bool) {
	c.visitOrder(func(e *campEntry) bool {
		return visit(cache.Entry{Key: e.key, Size: e.size, Cost: e.cost})
	})
}

// VisitEvictionPriority implements cache.PriorityOrdered: the same merge,
// with each entry's priority offset H − L and its queue id (the rounded
// integer ratio). The offset is what a snapshot must persist for a warm
// start to restore the cross-queue schedule exactly: after eviction churn
// different entries sit at different H − L (older entries were priced
// against a smaller L), which re-deriving H from the cost alone collapses.
// The queue id rides along because it cannot be re-derived either — the
// ratio integerizer's scale is adaptive, so a fresh policy would bucket the
// same (cost, size) differently until it re-learns the workload.
func (c *Camp) VisitEvictionPriority(visit func(e cache.Entry, prio, class uint64) bool) {
	c.visitOrder(func(e *campEntry) bool {
		return visit(cache.Entry{Key: e.key, Size: e.size, Cost: e.cost}, e.h-c.l, e.bucket)
	})
}

func (c *Camp) visitOrder(visit func(*campEntry) bool) {
	less := func(a, b *ilist.Node[*campEntry]) bool {
		if a.Value.h != b.Value.h {
			return a.Value.h < b.Value.h
		}
		return a.Value.seq < b.Value.seq
	}
	cursors := nheap.New(less)
	for _, q := range c.queues {
		cursors.Push(q.list.Front())
	}
	for cursors.Len() > 0 {
		n := cursors.Pop()
		if !visit(n.Value) {
			return
		}
		if next := n.Next(); next != nil {
			cursors.Push(next)
		}
	}
}

// SetWithPriority implements cache.PriorityOrdered: Set with the entry's
// priority pinned to H = L + offset in the exported queue (class) instead
// of the freshly derived L + ratio in a freshly bucketed queue. An offset
// above the class — impossible in a well-formed snapshot, reachable through
// a corrupt one — is clamped to the class so Proposition 1's
// L ≤ H ≤ L + ratio bound always holds.
func (c *Camp) SetWithPriority(key string, size, cost int64, prio, class uint64) bool {
	if size < 0 {
		size = 0
	}
	if e, ok := c.items[key]; ok {
		c.detach(e)
		if !c.admitAt(key, size, cost, prio, class) {
			c.stats.Rejected++
			return false
		}
		c.stats.Updates++
		return true
	}
	if !c.admitAt(key, size, cost, prio, class) {
		c.stats.Rejected++
		return false
	}
	c.stats.Sets++
	return true
}

// admitAt is admit with a pinned (priority offset, queue id). Unlike admit,
// the new entry's H may sort before existing queue members (a snapshot
// replayed in visitation order never does — it appends at the tail in O(1) —
// but the contract tolerates any order), so the entry is linked at its
// sorted queue position rather than blindly at the back. The ratio
// integerizer still observes the entry's size, so the adaptive scale future
// Sets bucket with is rebuilt from the restored working set.
func (c *Camp) admitAt(key string, size, cost int64, prio, class uint64) bool {
	if size > c.capacity {
		return false
	}
	for c.used+size > c.capacity {
		if !c.evictOne() {
			return false
		}
	}
	if size >= 1 {
		c.conv.Observe(size)
	}
	bucket := class
	if prio > bucket {
		prio = bucket
	}
	e := &campEntry{key: key, size: size, cost: cost, bucket: bucket}
	e.h = satAdd(c.l, prio)
	c.seq++
	e.seq = c.seq

	q, ok := c.queues[bucket]
	if !ok {
		q = c.addQueue(bucket)
		e.node = &ilist.Node[*campEntry]{Value: e}
		q.list.PushBackNode(e.node)
		c.heap.Push(q)
		c.heapUpdates++
	} else {
		// e.seq is the newest, so ties on H sort after existing entries:
		// scan from the tail for the first member that does not outrank e.
		at := q.list.Back()
		for at != nil && at.Value.h > e.h {
			at = at.Prev()
		}
		if at == nil {
			e.node = q.list.PushFront(e)
			// The queue's head changed to a smaller priority.
			c.heap.Fix(q.heapIdx)
			c.heapUpdates++
		} else {
			e.node = q.list.InsertAfter(e, at)
		}
	}
	c.items[key] = e
	c.used += size
	return true
}

// CheckInvariants validates the §2 data-structure invariants; tests call it
// after every operation. It returns nil when all hold:
//
//  1. every queue is non-empty and registered in the heap at its heapIdx;
//  2. within a queue, items are ordered by non-decreasing (h, seq) — the
//     "LRU order equals priority order" observation;
//  3. L <= H(p) <= L + ratio(p) for every resident p (Proposition 1);
//  4. used bytes equal the sum of resident sizes and never exceed capacity;
//  5. the items map and the queues hold exactly the same entries.
func (c *Camp) CheckInvariants() error {
	var (
		bytes int64
		count int
	)
	heapItems := c.heap.Items()
	if len(heapItems) != len(c.queues) {
		return fmt.Errorf("heap has %d queues, map has %d", len(heapItems), len(c.queues))
	}
	for bucket, q := range c.queues {
		if q.bucket != bucket {
			return fmt.Errorf("queue registered under %d has bucket %d", bucket, q.bucket)
		}
		if q.list.Len() == 0 {
			return fmt.Errorf("queue %d is empty but registered", bucket)
		}
		if q.heapIdx < 0 || q.heapIdx >= len(heapItems) || heapItems[q.heapIdx] != q {
			return fmt.Errorf("queue %d heapIdx %d is stale", bucket, q.heapIdx)
		}
		var prev *campEntry
		for n := q.list.Front(); n != nil; n = n.Next() {
			e := n.Value
			if e.bucket != bucket {
				return fmt.Errorf("entry %q in queue %d has bucket %d", e.key, bucket, e.bucket)
			}
			if prev != nil && (e.h < prev.h || (e.h == prev.h && e.seq < prev.seq)) {
				return fmt.Errorf("queue %d not in priority order at %q", bucket, e.key)
			}
			if e.h < c.l {
				return fmt.Errorf("entry %q has H=%d below L=%d", e.key, e.h, c.l)
			}
			if e.h > satAdd(c.l, bucket) {
				return fmt.Errorf("entry %q has H=%d above L+ratio=%d", e.key, e.h, satAdd(c.l, bucket))
			}
			if got, ok := c.items[e.key]; !ok || got != e {
				return fmt.Errorf("entry %q in queue %d missing from items map", e.key, bucket)
			}
			bytes += e.size
			count++
			prev = e
		}
	}
	if count != len(c.items) {
		return fmt.Errorf("queues hold %d entries, items map %d", count, len(c.items))
	}
	if bytes != c.used {
		return fmt.Errorf("accounted %d bytes, used=%d", bytes, c.used)
	}
	if c.used > c.capacity {
		return fmt.Errorf("used %d exceeds capacity %d", c.used, c.capacity)
	}
	if bad := c.heap.Verify(); bad != -1 {
		return fmt.Errorf("queue heap invariant violated at slot %d", bad)
	}
	return nil
}
