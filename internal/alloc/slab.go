// Package alloc provides the two memory-placement substrates discussed in
// §5 of the CAMP paper: the Twemcache-style slab allocator (with its
// calcification failure mode and random slab eviction escape hatch) and a
// classic buddy allocator, which the paper proposes pairing with CAMP to
// separate space allocation from replacement decisions.
package alloc

import (
	"errors"
	"fmt"
	"math/rand"
)

// Slab allocator defaults mirroring Twemcache (§5): 1 MiB slabs, a smallest
// chunk of 120 bytes, and chunk sizes growing by a factor of 1.25 per class.
const (
	DefaultSlabSize   = 1 << 20
	DefaultMinChunk   = 120
	DefaultGrowFactor = 1.25
)

// ErrNoMemory is returned when an allocation cannot be satisfied without
// evicting something.
var ErrNoMemory = errors.New("alloc: out of memory")

// ErrTooLarge is returned when a request exceeds the largest chunk size.
var ErrTooLarge = errors.New("alloc: item larger than largest slab class")

// Handle identifies an allocated chunk.
type Handle struct {
	class int
	slab  int
	chunk int
}

// Class returns the slab class of the allocation.
func (h Handle) Class() int { return h.class }

// SlabAllocator implements Twemcache's memory layout: memory is carved into
// fixed-size slabs, each permanently assigned to a class that subdivides it
// into equal chunks. Once a slab joins a class it never leaves — the
// calcification limitation §5 describes — except via ReassignRandomSlab,
// which models Twemcache's random slab eviction.
type SlabAllocator struct {
	slabSize   int64
	maxSlabs   int
	chunkSizes []int64
	slabs      []*slab
	classes    []classState
	rng        *rand.Rand
}

type slab struct {
	id     int
	class  int
	owners map[int]string // occupied chunk index -> owner tag
}

type classState struct {
	slabIDs []int
	free    []Handle // free chunks
}

// SlabOption configures NewSlabAllocator.
type SlabOption func(*slabConfig)

type slabConfig struct {
	slabSize int64
	minChunk int64
	factor   float64
	seed     int64
}

// WithSlabSize overrides the 1 MiB slab size.
func WithSlabSize(n int64) SlabOption {
	return func(c *slabConfig) { c.slabSize = n }
}

// WithMinChunk overrides the smallest chunk size (class 1).
func WithMinChunk(n int64) SlabOption {
	return func(c *slabConfig) { c.minChunk = n }
}

// WithGrowFactor overrides the per-class chunk growth factor.
func WithGrowFactor(f float64) SlabOption {
	return func(c *slabConfig) { c.factor = f }
}

// WithSlabSeed seeds the random slab eviction choice, for deterministic
// tests.
func WithSlabSeed(seed int64) SlabOption {
	return func(c *slabConfig) { c.seed = seed }
}

// NewSlabAllocator creates an allocator managing totalMem bytes.
func NewSlabAllocator(totalMem int64, opts ...SlabOption) (*SlabAllocator, error) {
	cfg := slabConfig{
		slabSize: DefaultSlabSize,
		minChunk: DefaultMinChunk,
		factor:   DefaultGrowFactor,
		seed:     1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.slabSize <= 0 || cfg.minChunk <= 0 {
		return nil, fmt.Errorf("alloc: slab size and min chunk must be positive")
	}
	if cfg.minChunk > cfg.slabSize {
		return nil, fmt.Errorf("alloc: min chunk %d exceeds slab size %d", cfg.minChunk, cfg.slabSize)
	}
	if cfg.factor <= 1 {
		return nil, fmt.Errorf("alloc: growth factor must exceed 1")
	}
	maxSlabs := int(totalMem / cfg.slabSize)
	if maxSlabs < 1 {
		return nil, fmt.Errorf("alloc: total memory %d below one slab (%d)", totalMem, cfg.slabSize)
	}
	var sizes []int64
	for sz := cfg.minChunk; sz < cfg.slabSize; {
		sizes = append(sizes, sz)
		next := int64(float64(sz) * cfg.factor)
		if next == sz {
			next = sz + 1
		}
		sz = next
	}
	sizes = append(sizes, cfg.slabSize) // largest class: one chunk per slab
	return &SlabAllocator{
		slabSize:   cfg.slabSize,
		maxSlabs:   maxSlabs,
		chunkSizes: sizes,
		classes:    make([]classState, len(sizes)),
		rng:        rand.New(rand.NewSource(cfg.seed)),
	}, nil
}

// NumClasses returns the number of slab classes.
func (a *SlabAllocator) NumClasses() int { return len(a.chunkSizes) }

// ChunkSize returns the chunk size of class i (0-based).
func (a *SlabAllocator) ChunkSize(i int) int64 { return a.chunkSizes[i] }

// ClassFor returns the smallest class whose chunks fit size bytes, or an
// error when the size exceeds the largest class.
func (a *SlabAllocator) ClassFor(size int64) (int, error) {
	if size > a.chunkSizes[len(a.chunkSizes)-1] {
		return 0, ErrTooLarge
	}
	lo, hi := 0, len(a.chunkSizes)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if a.chunkSizes[mid] < size {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Alloc places an item of the given size owned by owner. It follows §5's
// three-step strategy (free chunk, then a fresh slab); when both fail it
// returns ErrNoMemory and the caller decides what to evict (step 4).
func (a *SlabAllocator) Alloc(owner string, size int64) (Handle, error) {
	class, err := a.ClassFor(size)
	if err != nil {
		return Handle{}, err
	}
	cs := &a.classes[class]
	// Step 2 (step 1, expired replacement, is the server's business):
	// reuse a free chunk of the matching class.
	if n := len(cs.free); n > 0 {
		h := cs.free[n-1]
		cs.free = cs.free[:n-1]
		a.slabs[h.slab].owners[h.chunk] = owner
		return h, nil
	}
	// Step 3: allocate a new slab for this class.
	if len(a.slabs) < a.maxSlabs {
		id := len(a.slabs)
		a.slabs = append(a.slabs, &slab{id: id, class: class, owners: make(map[int]string)})
		cs.slabIDs = append(cs.slabIDs, id)
		chunks := int(a.slabSize / a.chunkSizes[class])
		for c := chunks - 1; c >= 1; c-- {
			cs.free = append(cs.free, Handle{class: class, slab: id, chunk: c})
		}
		a.slabs[id].owners[0] = owner
		return Handle{class: class, slab: id, chunk: 0}, nil
	}
	// Step 4 is an eviction decision: out of scope for the allocator.
	return Handle{}, ErrNoMemory
}

// Free releases a chunk back to its class's free list.
func (a *SlabAllocator) Free(h Handle) {
	if h.slab < 0 || h.slab >= len(a.slabs) {
		panic("alloc: Free of invalid handle")
	}
	s := a.slabs[h.slab]
	if _, ok := s.owners[h.chunk]; !ok {
		panic("alloc: double free")
	}
	delete(s.owners, h.chunk)
	a.classes[s.class].free = append(a.classes[s.class].free, Handle{class: s.class, slab: h.slab, chunk: h.chunk})
}

// Owner returns the owner tag of an allocated chunk.
func (a *SlabAllocator) Owner(h Handle) (string, bool) {
	if h.slab < 0 || h.slab >= len(a.slabs) {
		return "", false
	}
	o, ok := a.slabs[h.slab].owners[h.chunk]
	return o, ok
}

// HasFreeChunk reports whether class has an immediately reusable chunk or a
// fresh slab could be allocated for it.
func (a *SlabAllocator) HasFreeChunk(class int) bool {
	return len(a.classes[class].free) > 0 || len(a.slabs) < a.maxSlabs
}

// ReassignRandomSlab implements Twemcache's random slab eviction: a random
// slab belonging to a *different* class is emptied and reassigned to
// toClass. It returns the owner tags of every chunk that was occupied so
// the caller can purge those items, and false when no donor slab exists.
func (a *SlabAllocator) ReassignRandomSlab(toClass int) ([]string, bool) {
	var donors []int
	for _, s := range a.slabs {
		if s.class != toClass {
			donors = append(donors, s.id)
		}
	}
	if len(donors) == 0 {
		return nil, false
	}
	victim := a.slabs[donors[a.rng.Intn(len(donors))]]
	evicted := make([]string, 0, len(victim.owners))
	for _, owner := range victim.owners {
		evicted = append(evicted, owner)
	}
	victim.owners = make(map[int]string)

	// Remove the slab from its old class: drop free-list entries and the
	// slab id.
	old := &a.classes[victim.class]
	keptFree := old.free[:0]
	for _, h := range old.free {
		if h.slab != victim.id {
			keptFree = append(keptFree, h)
		}
	}
	old.free = keptFree
	keptIDs := old.slabIDs[:0]
	for _, id := range old.slabIDs {
		if id != victim.id {
			keptIDs = append(keptIDs, id)
		}
	}
	old.slabIDs = keptIDs

	// Join the new class with a full complement of free chunks.
	victim.class = toClass
	cs := &a.classes[toClass]
	cs.slabIDs = append(cs.slabIDs, victim.id)
	chunks := int(a.slabSize / a.chunkSizes[toClass])
	for c := chunks - 1; c >= 0; c-- {
		cs.free = append(cs.free, Handle{class: toClass, slab: victim.id, chunk: c})
	}
	return evicted, true
}

// ClassStats describes one slab class's occupancy.
type ClassStats struct {
	ChunkSize  int64
	Slabs      int
	UsedChunks int
	FreeChunks int
}

// Stats returns per-class occupancy, indexable by class id.
func (a *SlabAllocator) Stats() []ClassStats {
	out := make([]ClassStats, len(a.chunkSizes))
	for i := range out {
		out[i].ChunkSize = a.chunkSizes[i]
		out[i].Slabs = len(a.classes[i].slabIDs)
		out[i].FreeChunks = len(a.classes[i].free)
		for _, id := range a.classes[i].slabIDs {
			out[i].UsedChunks += len(a.slabs[id].owners)
		}
	}
	return out
}

// SlabsAllocated returns the number of slabs carved so far.
func (a *SlabAllocator) SlabsAllocated() int { return len(a.slabs) }

// MaxSlabs returns the slab budget.
func (a *SlabAllocator) MaxSlabs() int { return a.maxSlabs }
