package alloc

import (
	"math/rand"
	"testing"
)

func newBuddy(t *testing.T, arena, minBlock int64) *BuddyAllocator {
	t.Helper()
	b, err := NewBuddyAllocator(arena, minBlock)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuddyConstructionErrors(t *testing.T) {
	if _, err := NewBuddyAllocator(0, 64); err == nil {
		t.Fatal("zero arena must error")
	}
	if _, err := NewBuddyAllocator(1024, 0); err == nil {
		t.Fatal("zero min block must error")
	}
	if _, err := NewBuddyAllocator(64, 1024); err == nil {
		t.Fatal("min block above arena must error")
	}
}

func TestBuddyArenaRounding(t *testing.T) {
	b := newBuddy(t, 1000, 64) // rounds down to 512
	if b.ArenaSize() != 512 {
		t.Fatalf("arena = %d, want 512", b.ArenaSize())
	}
}

func TestBuddyBlockSize(t *testing.T) {
	b := newBuddy(t, 1024, 64)
	tests := []struct {
		size int64
		want int64
	}{
		{size: 1, want: 64},
		{size: 64, want: 64},
		{size: 65, want: 128},
		{size: 100, want: 128},
		{size: 1024, want: 1024},
	}
	for _, tt := range tests {
		got, err := b.BlockSize(tt.size)
		if err != nil {
			t.Fatalf("BlockSize(%d): %v", tt.size, err)
		}
		if got != tt.want {
			t.Fatalf("BlockSize(%d) = %d, want %d", tt.size, got, tt.want)
		}
	}
	if _, err := b.BlockSize(2048); err == nil {
		t.Fatal("oversized block must error")
	}
}

func TestBuddySplitAndCoalesce(t *testing.T) {
	b := newBuddy(t, 1024, 64)
	// Allocate the whole arena as 16 min blocks.
	var offs []int64
	for i := 0; i < 16; i++ {
		off, err := b.Alloc(64)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		offs = append(offs, off)
		if err := b.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Alloc(64); err != ErrNoMemory {
		t.Fatalf("full arena should return ErrNoMemory, got %v", err)
	}
	if b.Used() != 1024 || b.FreeBytes() != 0 {
		t.Fatalf("Used=%d Free=%d", b.Used(), b.FreeBytes())
	}
	// Free everything; blocks must coalesce back into one max block.
	for _, off := range offs {
		b.Free(off)
		if err := b.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if b.Used() != 0 || b.FreeBytes() != 1024 {
		t.Fatalf("after free-all: Used=%d Free=%d", b.Used(), b.FreeBytes())
	}
	// A full-arena allocation must now succeed — proof of coalescing.
	if _, err := b.Alloc(1024); err != nil {
		t.Fatalf("full-arena alloc after coalescing: %v", err)
	}
}

func TestBuddyFreeUnallocatedPanics(t *testing.T) {
	b := newBuddy(t, 1024, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Free(0)
}

func TestBuddyMixedSizes(t *testing.T) {
	b := newBuddy(t, 4096, 64)
	a1, err := b.Alloc(1000) // 1024 block
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b.Alloc(2000) // 2048 block
	if err != nil {
		t.Fatal(err)
	}
	a3, err := b.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 1024+2048+512 {
		t.Fatalf("Used = %d", b.Used())
	}
	// 512 bytes remain; a 1024 request must fail.
	if _, err := b.Alloc(1024); err != ErrNoMemory {
		t.Fatalf("expected ErrNoMemory, got %v", err)
	}
	b.Free(a1)
	if _, err := b.Alloc(1024); err != nil {
		t.Fatalf("1024 after freeing 1024: %v", err)
	}
	b.Free(a2)
	b.Free(a3)
}

// TestBuddyRandomized cross-checks invariants under random churn.
func TestBuddyRandomized(t *testing.T) {
	b := newBuddy(t, 1<<16, 64)
	rng := rand.New(rand.NewSource(8))
	live := make([]int64, 0, 128)
	for op := 0; op < 20000; op++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			size := int64(rng.Intn(4096) + 1)
			off, err := b.Alloc(size)
			if err == nil {
				live = append(live, off)
			}
		} else {
			i := rng.Intn(len(live))
			b.Free(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if op%500 == 0 {
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	for _, off := range live {
		b.Free(off)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 0 {
		t.Fatalf("Used = %d after freeing everything", b.Used())
	}
	if _, err := b.Alloc(1 << 16); err != nil {
		t.Fatalf("arena did not fully coalesce: %v", err)
	}
}
