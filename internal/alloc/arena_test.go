package alloc

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// arenaModel drives an Arena the way kvserver does — append the new record
// first, then release the old one, keeping a reference model of what must be
// live — so tests and the fuzzer share one correctness oracle.
type arenaModel struct {
	t    testing.TB
	a    *Arena
	refs map[string]Ref
	vals map[string][]byte
	exps map[string]int64
}

func newArenaModel(t testing.TB, capacity, segSize int64) *arenaModel {
	a, err := NewArena(capacity, segSize)
	if err != nil {
		t.Fatal(err)
	}
	return &arenaModel{t: t, a: a, refs: map[string]Ref{}, vals: map[string][]byte{}, exps: map[string]int64{}}
}

func (m *arenaModel) alive(key []byte, ref Ref) bool {
	r, ok := m.refs[string(key)]
	return ok && r == ref
}

func (m *arenaModel) moved(key []byte, ref Ref) {
	k := string(key)
	if _, ok := m.refs[k]; !ok {
		m.t.Fatalf("compactor relocated unindexed key %q", k)
	}
	m.refs[k] = ref
}

// set mirrors the store's ordering: append, compact/fail on pressure,
// release the previous version only after the new one landed.
func (m *arenaModel) set(key string, value []byte, exp int64) bool {
	var ref Ref
	for {
		r, err := m.a.Append(key, value, 7, exp)
		if err == nil {
			ref = r
			break
		}
		if !m.a.CompactForce(m.alive, m.moved) {
			return false
		}
	}
	if old, ok := m.refs[key]; ok {
		m.a.Release(old)
	}
	m.refs[key] = ref
	m.vals[key] = append([]byte(nil), value...)
	m.exps[key] = exp
	return true
}

func (m *arenaModel) del(key string) {
	if ref, ok := m.refs[key]; ok {
		m.a.Release(ref)
		delete(m.refs, key)
		delete(m.vals, key)
		delete(m.exps, key)
	}
}

// check verifies the index and the byte region agree: every modeled key
// decodes byte-for-byte at its Ref, and the live-byte counter matches the
// records the index can reach (no live record orphaned, none leaked).
func (m *arenaModel) check() {
	m.t.Helper()
	var live int64
	for k, ref := range m.refs {
		key, value, flags, exp, _ := decodeRecord(m.a.segs[ref.seg].buf[ref.off:])
		if string(key) != k {
			m.t.Fatalf("ref for %q decodes key %q", k, key)
		}
		if !bytes.Equal(value, m.vals[k]) {
			m.t.Fatalf("value mismatch for %q: got %q want %q", k, value, m.vals[k])
		}
		if flags != 7 {
			m.t.Fatalf("flags mismatch for %q: got %d", k, flags)
		}
		if exp != m.exps[k] {
			m.t.Fatalf("expiry mismatch for %q: got %d want %d", k, exp, m.exps[k])
		}
		live += recordSize(len(key), len(value))
	}
	st := m.a.Stats()
	if st.LiveBytes != live {
		m.t.Fatalf("live bytes %d, index sums to %d", st.LiveBytes, live)
	}
	if st.DeadBytes < 0 || st.HeldBytes < 0 {
		m.t.Fatalf("negative accounting: %+v", st)
	}
}

func TestArenaSetGetOverwriteDelete(t *testing.T) {
	m := newArenaModel(t, 1<<20, 0)
	for i := 0; i < 200; i++ {
		m.set(fmt.Sprintf("key-%03d", i), bytes.Repeat([]byte{byte(i)}, 50+i), int64(i))
	}
	m.check()
	// Overwrites mark the old bytes dead and stay readable.
	for i := 0; i < 200; i += 2 {
		m.set(fmt.Sprintf("key-%03d", i), []byte("overwritten"), 0)
	}
	m.check()
	if st := m.a.Stats(); st.DeadBytes == 0 {
		t.Fatal("overwrites created no dead bytes")
	}
	for i := 1; i < 200; i += 2 {
		m.del(fmt.Sprintf("key-%03d", i))
	}
	m.check()
}

func TestArenaTouchExpiry(t *testing.T) {
	m := newArenaModel(t, 1<<20, 0)
	m.set("k", []byte("v"), 100)
	m.a.TouchExpiry(m.refs["k"], 424242)
	_, _, _, exp := m.a.Record(m.refs["k"])
	if exp != 424242 {
		t.Fatalf("expiry after touch = %d, want 424242", exp)
	}
	// The rewrite must not corrupt the neighbors.
	m.exps["k"] = 424242
	m.set("k2", []byte("v2"), 0)
	m.check()
}

// TestArenaCompactionInvariant is the satellite compaction-invariant test:
// forced compaction in the middle of churn preserves every live value
// byte-for-byte, and the dead-byte ratio drops once victims recycle.
func TestArenaCompactionInvariant(t *testing.T) {
	m := newArenaModel(t, 64<<10, 2048)
	rng := rand.New(rand.NewSource(1))
	val := func(i int) []byte {
		b := make([]byte, 40+rng.Intn(120))
		for j := range b {
			b[j] = byte(i + j)
		}
		return b
	}
	for round := 0; round < 30; round++ {
		for i := 0; i < 40; i++ {
			if !m.set(fmt.Sprintf("key-%02d", i), val(i), int64(round)) {
				t.Fatalf("set failed on round %d", round)
			}
		}
		// Mid-churn forced compaction: every live value must survive
		// byte-for-byte, and the step accounting must stay balanced.
		if round%5 == 4 {
			before := m.a.Stats()
			for m.a.CompactForce(m.alive, m.moved) {
			}
			after := m.a.Stats()
			if after.DeadBytes >= before.DeadBytes && before.DeadBytes > 0 {
				t.Fatalf("dead ratio did not drop: before %d, after %d", before.DeadBytes, after.DeadBytes)
			}
			m.check()
		}
	}
	if st := m.a.Stats(); st.Compactions == 0 {
		t.Fatal("churn past the dead threshold never compacted")
	}
	m.check()
}

// TestArenaIncrementalCompaction drives the bounded step path: a sealed
// segment crossing the 50% dead threshold queues itself, and small
// CompactStep budgets relocate the survivors incrementally.
func TestArenaIncrementalCompaction(t *testing.T) {
	m := newArenaModel(t, 64<<10, 2048)
	for i := 0; i < 120; i++ {
		m.set(fmt.Sprintf("key-%03d", i), bytes.Repeat([]byte{'x'}, 80), 0)
	}
	// Kill three of every four early keys: the first segments cross the 50%
	// dead threshold but still hold survivors the compactor must relocate.
	for i := 0; i < 100; i++ {
		if i%4 != 0 {
			m.del(fmt.Sprintf("key-%03d", i))
		}
	}
	if !m.a.NeedsCompaction() {
		t.Fatal("arena should need compaction after mass deletes")
	}
	steps := 0
	for m.a.NeedsCompaction() {
		scanned, _ := m.a.CompactStep(512, m.alive, m.moved)
		steps++
		if scanned == 0 && m.a.NeedsCompaction() {
			t.Fatal("compaction stalled with victims queued")
		}
		if steps > 10_000 {
			t.Fatal("compaction never drained")
		}
	}
	if steps < 2 {
		t.Fatalf("bounded steps should take multiple calls, took %d", steps)
	}
	m.check()
	if st := m.a.Stats(); st.Compactions == 0 || st.RelocatedBytes == 0 {
		t.Fatalf("stats missed the compaction: %+v", st)
	}
}

func TestArenaOversizeRecords(t *testing.T) {
	m := newArenaModel(t, 64<<10, 2048)
	big := bytes.Repeat([]byte{'b'}, 8000) // > segSize: dedicated segment
	if !m.set("big", big, 0) {
		t.Fatal("oversize set failed")
	}
	m.set("small", []byte("s"), 0)
	m.check()
	held := m.a.Stats().HeldBytes
	m.del("big")
	if after := m.a.Stats().HeldBytes; after >= held {
		t.Fatalf("dropping the oversize record kept its memory: %d -> %d", held, after)
	}
	m.check()
	// The freed slot is reusable.
	if !m.set("big2", big, 0) {
		t.Fatal("oversize slot not reusable")
	}
	m.check()
}

func TestArenaBudget(t *testing.T) {
	m := newArenaModel(t, 8<<10, 2048)
	filled := 0
	for i := 0; ; i++ {
		if !m.set(fmt.Sprintf("key-%04d", i), bytes.Repeat([]byte{'f'}, 100), 0) {
			break
		}
		filled++
		if filled > 1000 {
			t.Fatal("arena never hit its budget")
		}
	}
	m.check()
	// Deleting entries and retrying must succeed again: the dead bytes are
	// compactable.
	for i := 0; i < filled/2; i++ {
		m.del(fmt.Sprintf("key-%04d", i))
	}
	if !m.set("after", []byte("room again"), 0) {
		t.Fatal("set failed after deletes freed half the arena")
	}
	m.check()
	if st := m.a.Stats(); st.HeldBytes > 8<<10+2048 {
		t.Fatalf("held bytes %d exceed budget plus one segment of slack", st.HeldBytes)
	}
}

// FuzzArenaSetGet churns random set/delete/overwrite/expiry traffic and
// checks after every mutation that the index and the byte region agree —
// no live record orphaned, no stale bytes reachable (the satellite fuzz
// target; wired into make fuzz / fuzz-smoke).
func FuzzArenaSetGet(f *testing.F) {
	f.Add([]byte("seed"), int64(42))
	f.Add(bytes.Repeat([]byte{0xff, 0x00, 0x7b}, 40), int64(7))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		m := newArenaModel(t, 32<<10, 1024)
		rng := rand.New(rand.NewSource(seed))
		for i, b := range data {
			key := fmt.Sprintf("key-%02d", b%37)
			switch b % 4 {
			case 0, 1:
				v := make([]byte, rng.Intn(200))
				for j := range v {
					v[j] = byte(i + j)
				}
				m.set(key, v, int64(b))
			case 2:
				m.del(key)
			case 3:
				if ref, ok := m.refs[key]; ok {
					m.a.TouchExpiry(ref, int64(i))
					m.exps[key] = int64(i)
				}
				if b%8 == 3 {
					m.a.CompactStep(256, m.alive, m.moved)
				}
			}
			if i%16 == 15 {
				m.check()
			}
		}
		for m.a.CompactForce(m.alive, m.moved) {
		}
		m.check()
	})
}
