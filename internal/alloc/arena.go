// Arena is the fourth memory layout (§5 names malloc, slab and buddy; this
// is the Memshare-style log-structured fourth): keys and values are packed
// into large append-only segment blocks as self-describing records
//
//	[klen uvarint | vlen uvarint | flags uint32 LE | expiry int64 LE | key | value]
//
// indexed from outside by a (segment, offset) Ref. A set copies the bytes
// into the tail segment and a get slices them back out, so the store's
// steady state performs no per-item heap allocation and no per-item GC work.
// Deletes and overwrites only mark bytes dead; an incremental compactor
// relocates the live records of the deadest segment in small bounded steps
// (Memshare's cleaner) and recycles the segment wholesale.
//
// The record layout is deliberately position-independent and self-delimiting
// — a segment is parseable from byte 0 with no out-of-band index — so a
// future restart path can mmap segment files and rebuild the index with one
// sequential scan (ROADMAP's mmap-instant-restart; this format is step 1).
//
// The arena performs no locking: kvserver drives it under the shard mutex,
// exactly like the slab and buddy allocators.
package alloc

import (
	"encoding/binary"
	"fmt"
)

// Ref identifies one record in an Arena: the segment it lives in and the
// byte offset of its header. The zero Ref is indistinguishable from "first
// record of segment 0", so holders must track validity themselves (the
// kvserver item does: an item exists only while its record does).
type Ref struct {
	seg uint32
	off uint32
}

// recHeaderFixed is the fixed tail of a record header: 4 flag bytes plus 8
// expiry bytes (unix nanoseconds, 0 = no expiry).
const recHeaderFixed = 12

// DefaultArenaSegment is the segment size when the capacity is large enough
// not to clamp it.
const DefaultArenaSegment = 1 << 20

// aseg is one segment block. buf's length is the append cursor; records are
// contiguous from 0 to len(buf), so a full segment scan needs no index.
type aseg struct {
	buf    []byte
	dead   int64 // bytes belonging to released/overwritten/relocated records
	sealed bool  // no longer the append target
	queued bool  // waiting in the compaction victim queue
	// oversize marks a dedicated exactly-sized segment holding one record
	// larger than segSize. It is dropped wholesale when its record dies and
	// is never a relocation source or target.
	oversize bool
}

// Arena is a packed per-shard storage region; see the package comment.
type Arena struct {
	segSize  int64
	capacity int64 // budget: max bytes held across all segment buffers
	held     int64 // current Σ cap(seg.buf)

	segs     []*aseg
	active   int      // index of the append target in segs, -1 when none
	freeSegs []uint32 // recycled normal segments, buffers retained
	freeIDs  []uint32 // slots of dropped oversize segments, buffers released

	// victims queues sealed segments whose dead ratio crossed the
	// compaction threshold; cursor is the scan offset inside victims[0],
	// carried across incremental CompactStep calls.
	victims []uint32
	cursor  int64

	live        int64
	dead        int64
	compactions uint64
	relocated   uint64 // bytes moved by the compactor
}

// NewArena sizes an arena for capacity bytes of records. segSize 0 picks a
// default (1 MiB, clamped so small shards still get several segments to
// rotate through). An explicit segSize is clamped to the capacity.
func NewArena(capacity, segSize int64) (*Arena, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("alloc: arena capacity must be positive, got %d", capacity)
	}
	if segSize == 0 {
		segSize = capacity / 8
		if segSize > DefaultArenaSegment {
			segSize = DefaultArenaSegment
		}
		if segSize < 4096 {
			segSize = 4096
		}
	}
	if segSize < 64 {
		segSize = 64
	}
	if segSize > capacity {
		segSize = capacity
	}
	return &Arena{segSize: segSize, capacity: capacity, active: -1}, nil
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// recordSize is the full encoded size of a record with the given key and
// value lengths.
func recordSize(klen, vlen int) int64 {
	return int64(uvarintLen(uint64(klen))+uvarintLen(uint64(vlen))+recHeaderFixed) + int64(klen) + int64(vlen)
}

// appendRecord encodes one record onto buf. Generic over the key form so the
// wire []byte path never materializes a string.
func appendRecord[K ~string | ~[]byte](buf []byte, key K, value []byte, flags uint32, expNano int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = binary.AppendUvarint(buf, uint64(len(value)))
	buf = binary.LittleEndian.AppendUint32(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(expNano))
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

// decodeRecord splits the record at the start of b. The returned slices
// alias b.
func decodeRecord(b []byte) (key, value []byte, flags uint32, expNano int64, size int64) {
	kl, n1 := binary.Uvarint(b)
	vl, n2 := binary.Uvarint(b[n1:])
	h := n1 + n2
	flags = binary.LittleEndian.Uint32(b[h:])
	expNano = int64(binary.LittleEndian.Uint64(b[h+4:]))
	h += recHeaderFixed
	key = b[h : h+int(kl)]
	value = b[h+int(kl) : h+int(kl)+int(vl)]
	return key, value, flags, expNano, int64(h) + int64(kl) + int64(vl)
}

// Append copies one record into the arena and returns its Ref. ErrNoMemory
// means the arena is physically full: the caller should reclaim dead bytes
// (CompactForce) or evict entries (which creates dead bytes) and retry.
func (a *Arena) Append(key string, value []byte, flags uint32, expNano int64) (Ref, error) {
	return appendIn(a, key, value, flags, expNano)
}

// appendIn is Append generic over the key form; relocation reuses it with
// the []byte key sliced out of the victim segment.
func appendIn[K ~string | ~[]byte](a *Arena, key K, value []byte, flags uint32, expNano int64) (Ref, error) {
	n := recordSize(len(key), len(value))
	if n > a.segSize {
		return appendOversize(a, key, value, flags, expNano, n)
	}
	id, seg := a.tail(n, false)
	if seg == nil {
		return Ref{}, ErrNoMemory
	}
	off := len(seg.buf)
	seg.buf = appendRecord(seg.buf, key, value, flags, expNano)
	a.live += n
	return Ref{seg: id, off: uint32(off)}, nil
}

// appendOversize places one record larger than segSize in a dedicated
// exactly-sized segment. Retained free segments are dropped first to make
// budget room: their memory is idle by definition.
func appendOversize[K ~string | ~[]byte](a *Arena, key K, value []byte, flags uint32, expNano int64, n int64) (Ref, error) {
	for a.held+n > a.capacity && len(a.freeSegs) > 0 {
		a.dropFreeSeg()
	}
	if a.held+n > a.capacity {
		return Ref{}, ErrNoMemory
	}
	seg := &aseg{buf: make([]byte, 0, n), sealed: true, oversize: true}
	id := a.installSeg(seg)
	a.held += n
	seg.buf = appendRecord(seg.buf, key, value, flags, expNano)
	a.live += n
	return Ref{seg: id, off: 0}, nil
}

// dropFreeSeg releases one recycled segment's buffer back to the heap,
// returning its budget bytes.
func (a *Arena) dropFreeSeg() {
	id := a.freeSegs[len(a.freeSegs)-1]
	a.freeSegs = a.freeSegs[:len(a.freeSegs)-1]
	seg := a.segs[id]
	a.held -= int64(cap(seg.buf))
	a.segs[id] = nil
	a.freeIDs = append(a.freeIDs, id)
}

// installSeg places seg in the first free slot (or appends one) and returns
// its id.
func (a *Arena) installSeg(seg *aseg) uint32 {
	if n := len(a.freeIDs); n > 0 {
		id := a.freeIDs[n-1]
		a.freeIDs = a.freeIDs[:n-1]
		a.segs[id] = seg
		return id
	}
	a.segs = append(a.segs, seg)
	return uint32(len(a.segs) - 1)
}

// tail returns a segment with room for n more bytes, sealing the current
// active segment and rotating to a recycled or new one as needed. overshoot
// lets the compactor exceed the byte budget by one segment: relocation needs
// somewhere to write before the victim's recycle pays the budget back.
func (a *Arena) tail(n int64, overshoot bool) (uint32, *aseg) {
	if a.active >= 0 {
		seg := a.segs[a.active]
		if int64(cap(seg.buf)-len(seg.buf)) >= n {
			return uint32(a.active), seg
		}
		a.seal(uint32(a.active), seg)
		a.active = -1
	}
	if m := len(a.freeSegs); m > 0 {
		id := a.freeSegs[m-1]
		a.freeSegs = a.freeSegs[:m-1]
		seg := a.segs[id]
		seg.buf = seg.buf[:0]
		seg.dead = 0
		seg.sealed, seg.queued = false, false
		a.active = int(id)
		return id, seg
	}
	if a.held+a.segSize > a.capacity && !overshoot {
		return 0, nil
	}
	seg := &aseg{buf: make([]byte, 0, a.segSize)}
	id := a.installSeg(seg)
	a.held += a.segSize
	a.active = int(id)
	return id, seg
}

// seal retires the active segment and queues it for compaction if its dead
// ratio already crossed the threshold.
func (a *Arena) seal(id uint32, seg *aseg) {
	seg.sealed = true
	a.maybeQueue(id, seg)
}

// maybeQueue puts a sealed segment on the victim queue once at least half
// its bytes are dead — the compaction trigger.
func (a *Arena) maybeQueue(id uint32, seg *aseg) {
	if !seg.sealed || seg.queued || seg.oversize || len(seg.buf) == 0 {
		return
	}
	if seg.dead*2 >= int64(len(seg.buf)) {
		seg.queued = true
		a.victims = append(a.victims, id)
	}
}

// Release marks the record at ref dead. Oversize segments whose record died
// are dropped immediately; normal segments wait for the compactor.
func (a *Arena) Release(ref Ref) {
	seg := a.segs[ref.seg]
	_, _, _, _, n := decodeRecord(seg.buf[ref.off:])
	a.markDead(ref.seg, seg, n)
}

func (a *Arena) markDead(id uint32, seg *aseg, n int64) {
	seg.dead += n
	a.dead += n
	a.live -= n
	if seg.oversize {
		if seg.dead >= int64(len(seg.buf)) {
			a.held -= int64(cap(seg.buf))
			a.dead -= seg.dead
			a.segs[id] = nil
			a.freeIDs = append(a.freeIDs, id)
		}
		return
	}
	a.maybeQueue(id, seg)
}

// Value returns the record's value bytes, aliasing the segment buffer. The
// slice is invalidated by compaction, so callers must copy (or finish using
// it) before releasing the lock that serializes arena access.
func (a *Arena) Value(ref Ref) []byte {
	_, v, _, _, _ := decodeRecord(a.segs[ref.seg].buf[ref.off:])
	return v
}

// Record returns the full decoded record at ref; the slices alias the
// segment buffer (see Value).
func (a *Arena) Record(ref Ref) (key, value []byte, flags uint32, expNano int64) {
	key, value, flags, expNano, _ = decodeRecord(a.segs[ref.seg].buf[ref.off:])
	return key, value, flags, expNano
}

// TouchExpiry rewrites the record's expiry field in place — the one header
// mutation the format allows, so touch never reallocates the record.
func (a *Arena) TouchExpiry(ref Ref, expNano int64) {
	b := a.segs[ref.seg].buf[ref.off:]
	_, n1 := binary.Uvarint(b)
	_, n2 := binary.Uvarint(b[n1:])
	binary.LittleEndian.PutUint64(b[n1+n2+4:], uint64(expNano))
}

// NeedsCompaction reports whether any segment is waiting on the victim
// queue; kvserver runs one bounded CompactStep per mutation while it holds.
func (a *Arena) NeedsCompaction() bool { return len(a.victims) > 0 }

// CompactStep scans up to maxBytes of the current victim segment, asking
// alive whether each record is still indexed at its old Ref and announcing
// every relocation through moved before the old bytes are retired — so the
// caller can re-point its index under the same lock. A fully scanned victim
// is recycled onto the free-segment list. Returns the bytes scanned and the
// bytes relocated.
func (a *Arena) CompactStep(maxBytes int64, alive func(key []byte, ref Ref) bool, moved func(key []byte, ref Ref)) (scanned, relocated int64) {
	if len(a.victims) == 0 {
		return 0, 0
	}
	id := a.victims[0]
	seg := a.segs[id]
	for a.cursor < int64(len(seg.buf)) && scanned < maxBytes {
		off := a.cursor
		key, value, flags, expNano, n := decodeRecord(seg.buf[off:])
		a.cursor += n
		scanned += n
		if !alive(key, Ref{seg: id, off: uint32(off)}) {
			continue // already marked dead by its release/overwrite
		}
		dstID, dst := a.tail(recordSize(len(key), len(value)), true)
		noff := len(dst.buf)
		dst.buf = appendRecord(dst.buf, key, value, flags, expNano)
		moved(key, Ref{seg: dstID, off: uint32(noff)})
		// The new copy is the live one; the original joins the dead bytes
		// so the recycle below accounts for every byte in the segment.
		seg.dead += n
		a.dead += n
		a.relocated += uint64(n)
		relocated += n
	}
	if a.cursor >= int64(len(seg.buf)) {
		a.dead -= seg.dead
		seg.buf = seg.buf[:0]
		seg.dead = 0
		seg.queued = false
		a.victims = a.victims[1:]
		a.cursor = 0
		a.freeSegs = append(a.freeSegs, id)
		a.compactions++
	}
	return scanned, relocated
}

// CompactForce fully compacts one segment — the queued victim if any,
// otherwise the sealed segment with the most dead bytes — and reports
// whether a segment was recycled. The Append retry loop uses it when the
// arena is physically full: recycling any segment makes room for the next
// normal-size record.
func (a *Arena) CompactForce(alive func(key []byte, ref Ref) bool, moved func(key []byte, ref Ref)) bool {
	if len(a.victims) == 0 {
		best, bestDead := -1, int64(0)
		for id, seg := range a.segs {
			if seg == nil || !seg.sealed || seg.oversize || seg.queued {
				continue
			}
			if seg.dead > bestDead {
				best, bestDead = id, seg.dead
			}
		}
		if best < 0 {
			return false
		}
		a.segs[best].queued = true
		a.victims = append(a.victims, uint32(best))
	}
	victims := len(a.victims)
	for len(a.victims) == victims {
		if s, _ := a.CompactStep(1<<62, alive, moved); s == 0 && len(a.victims) == victims {
			// An empty victim recycles without scanning; guard against a
			// zero-progress loop all the same.
			break
		}
	}
	return len(a.victims) < victims
}

// ArenaStats is a point-in-time accounting snapshot.
type ArenaStats struct {
	LiveBytes      int64  // bytes of indexed records
	DeadBytes      int64  // bytes awaiting compaction
	HeldBytes      int64  // total segment memory held (incl. free + waste)
	Segments       int    // segments holding a buffer
	Compactions    uint64 // segments recycled by the compactor
	RelocatedBytes uint64 // live bytes the compactor moved
}

// Stats returns the arena's accounting counters.
func (a *Arena) Stats() ArenaStats {
	n := 0
	for _, seg := range a.segs {
		if seg != nil {
			n++
		}
	}
	return ArenaStats{
		LiveBytes:      a.live,
		DeadBytes:      a.dead,
		HeldBytes:      a.held,
		Segments:       n,
		Compactions:    a.compactions,
		RelocatedBytes: a.relocated,
	}
}
