package alloc

import (
	"fmt"
	"math/bits"
	"sort"
)

// BuddyAllocator is a classic binary buddy system over a power-of-two arena.
// §5 of the paper suggests it as the space manager to pair with CAMP (or
// LRU) in a memcached-style server, separating how memory is allocated from
// which key-value pairs occupy it — thereby avoiding slab calcification.
//
// Blocks are powers of two from minBlock up to the arena size. Alloc rounds
// the request up, splitting larger blocks as needed; Free coalesces a block
// with its buddy whenever the buddy is also free.
type BuddyAllocator struct {
	arenaBits int // arena size == 1 << arenaBits
	minBits   int // smallest block == 1 << minBits
	// free[o] holds the offsets of free blocks of order o, where order o
	// means size 1 << (minBits + o).
	free [][]int64
	// allocated maps an offset to its block order.
	allocated map[int64]int
	usedBytes int64
}

// NewBuddyAllocator creates a buddy allocator over an arena of arenaSize
// bytes (rounded down to a power of two) with the given smallest block.
func NewBuddyAllocator(arenaSize, minBlock int64) (*BuddyAllocator, error) {
	if arenaSize <= 0 || minBlock <= 0 {
		return nil, fmt.Errorf("alloc: arena and min block must be positive")
	}
	if minBlock > arenaSize {
		return nil, fmt.Errorf("alloc: min block %d exceeds arena %d", minBlock, arenaSize)
	}
	arenaBits := bits.Len64(uint64(arenaSize)) - 1 // round down to 2^k
	minBits := bits.Len64(uint64(minBlock))
	if 1<<(minBits-1) == minBlock {
		minBits-- // minBlock already a power of two
	}
	if minBits > arenaBits {
		return nil, fmt.Errorf("alloc: min block rounds above arena")
	}
	orders := arenaBits - minBits + 1
	b := &BuddyAllocator{
		arenaBits: arenaBits,
		minBits:   minBits,
		free:      make([][]int64, orders),
		allocated: make(map[int64]int),
	}
	b.free[orders-1] = []int64{0} // one maximal free block
	return b, nil
}

// ArenaSize returns the usable arena size in bytes.
func (b *BuddyAllocator) ArenaSize() int64 { return 1 << b.arenaBits }

// Used returns the bytes currently allocated (after power-of-two rounding).
func (b *BuddyAllocator) Used() int64 { return b.usedBytes }

// BlockSize returns the rounded block size an allocation of size bytes
// would occupy.
func (b *BuddyAllocator) BlockSize(size int64) (int64, error) {
	o, err := b.orderFor(size)
	if err != nil {
		return 0, err
	}
	return b.sizeOf(o), nil
}

// Alloc reserves a block of at least size bytes and returns its offset.
func (b *BuddyAllocator) Alloc(size int64) (int64, error) {
	order, err := b.orderFor(size)
	if err != nil {
		return 0, err
	}
	// Find the smallest order >= order with a free block.
	from := order
	for from < len(b.free) && len(b.free[from]) == 0 {
		from++
	}
	if from == len(b.free) {
		return 0, ErrNoMemory
	}
	// Pop and split down to the requested order.
	off := b.pop(from)
	for from > order {
		from--
		buddy := off + b.sizeOf(from)
		b.free[from] = append(b.free[from], buddy)
	}
	b.allocated[off] = order
	b.usedBytes += b.sizeOf(order)
	return off, nil
}

// Free releases the block at offset, coalescing with free buddies.
func (b *BuddyAllocator) Free(offset int64) {
	order, ok := b.allocated[offset]
	if !ok {
		panic("alloc: Free of unallocated offset")
	}
	delete(b.allocated, offset)
	b.usedBytes -= b.sizeOf(order)
	for order < len(b.free)-1 {
		buddy := offset ^ b.sizeOf(order)
		if !b.removeFree(order, buddy) {
			break
		}
		if buddy < offset {
			offset = buddy
		}
		order++
	}
	b.free[order] = append(b.free[order], offset)
}

// FreeBytes returns the total bytes on free lists.
func (b *BuddyAllocator) FreeBytes() int64 {
	var total int64
	for o, blocks := range b.free {
		total += int64(len(blocks)) * b.sizeOf(o)
	}
	return total
}

// CheckInvariants verifies that free and allocated blocks exactly tile the
// arena without overlap; tests call it after every operation.
func (b *BuddyAllocator) CheckInvariants() error {
	type span struct{ off, size int64 }
	var spans []span
	for off, o := range b.allocated {
		spans = append(spans, span{off, b.sizeOf(o)})
	}
	for o, blocks := range b.free {
		for _, off := range blocks {
			spans = append(spans, span{off, b.sizeOf(o)})
		}
	}
	var total int64
	seen := make(map[int64]int64, len(spans))
	for _, s := range spans {
		if s.off%s.size != 0 {
			return fmt.Errorf("block at %d size %d is misaligned", s.off, s.size)
		}
		if old, dup := seen[s.off]; dup {
			return fmt.Errorf("offset %d appears twice (sizes %d and %d)", s.off, old, s.size)
		}
		seen[s.off] = s.size
		total += s.size
	}
	if total != b.ArenaSize() {
		return fmt.Errorf("blocks cover %d bytes, arena is %d", total, b.ArenaSize())
	}
	// Overlap check: sort by offset and ensure each block ends where the
	// next begins. With exact coverage and no duplicate offsets, checking
	// pairwise adjacency suffices.
	offs := make([]int64, 0, len(seen))
	for off := range seen {
		offs = append(offs, off)
	}
	sortInt64s(offs)
	var cursor int64
	for _, off := range offs {
		if off != cursor {
			return fmt.Errorf("gap or overlap at offset %d (cursor %d)", off, cursor)
		}
		cursor += seen[off]
	}
	return nil
}

func (b *BuddyAllocator) orderFor(size int64) (int, error) {
	if size <= 0 {
		size = 1
	}
	if size > b.ArenaSize() {
		return 0, ErrTooLarge
	}
	bitsNeeded := bits.Len64(uint64(size - 1))
	if 1<<bitsNeeded < size {
		bitsNeeded++
	}
	if bitsNeeded < b.minBits {
		bitsNeeded = b.minBits
	}
	return bitsNeeded - b.minBits, nil
}

func (b *BuddyAllocator) sizeOf(order int) int64 { return 1 << (b.minBits + order) }

func (b *BuddyAllocator) pop(order int) int64 {
	n := len(b.free[order])
	off := b.free[order][n-1]
	b.free[order] = b.free[order][:n-1]
	return off
}

func (b *BuddyAllocator) removeFree(order int, off int64) bool {
	blocks := b.free[order]
	for i, o := range blocks {
		if o == off {
			blocks[i] = blocks[len(blocks)-1]
			b.free[order] = blocks[:len(blocks)-1]
			return true
		}
	}
	return false
}

func sortInt64s(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
