package alloc

import (
	"fmt"
	"testing"
)

func newTestSlab(t *testing.T, totalMem int64, opts ...SlabOption) *SlabAllocator {
	t.Helper()
	a, err := NewSlabAllocator(totalMem, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSlabConstructionErrors(t *testing.T) {
	if _, err := NewSlabAllocator(100); err == nil {
		t.Fatal("memory below one slab must error")
	}
	if _, err := NewSlabAllocator(1<<21, WithSlabSize(0)); err == nil {
		t.Fatal("zero slab size must error")
	}
	if _, err := NewSlabAllocator(1<<21, WithMinChunk(0)); err == nil {
		t.Fatal("zero min chunk must error")
	}
	if _, err := NewSlabAllocator(1<<21, WithMinChunk(1<<22)); err == nil {
		t.Fatal("min chunk above slab size must error")
	}
	if _, err := NewSlabAllocator(1<<21, WithGrowFactor(1.0)); err == nil {
		t.Fatal("growth factor 1 must error")
	}
}

// TestSlabClassLayout checks the paper's §5 description: class 1 chunks are
// 120 bytes (8737+ per 1 MiB slab) and each class grows by ~1.25x; class 2
// is 152 bytes holding 6898 chunks.
func TestSlabClassLayout(t *testing.T) {
	a := newTestSlab(t, 4<<20)
	if got := a.ChunkSize(0); got != 120 {
		t.Fatalf("class 0 chunk = %d, want 120", got)
	}
	if got := a.ChunkSize(1); got != 150 {
		// 120 * 1.25 = 150; the paper quotes 152 due to metadata
		// padding, which we do not model.
		t.Fatalf("class 1 chunk = %d, want 150", got)
	}
	if got := int((1 << 20) / a.ChunkSize(0)); got != 8738 {
		t.Fatalf("chunks per slab for class 0 = %d, want 8738", got)
	}
	// Classes grow to the slab size and the last class holds one chunk.
	last := a.ChunkSize(a.NumClasses() - 1)
	if last != 1<<20 {
		t.Fatalf("largest class = %d, want slab size", last)
	}
	// Monotone growing sizes.
	for i := 1; i < a.NumClasses(); i++ {
		if a.ChunkSize(i) <= a.ChunkSize(i-1) {
			t.Fatalf("class sizes not increasing at %d", i)
		}
	}
}

func TestSlabClassFor(t *testing.T) {
	a := newTestSlab(t, 2<<20)
	tests := []struct {
		size      int64
		wantChunk int64
	}{
		{size: 1, wantChunk: 120},
		{size: 120, wantChunk: 120},
		{size: 121, wantChunk: 150},
		{size: 150, wantChunk: 150},
		{size: 151, wantChunk: 187},
	}
	for _, tt := range tests {
		class, err := a.ClassFor(tt.size)
		if err != nil {
			t.Fatalf("ClassFor(%d): %v", tt.size, err)
		}
		if got := a.ChunkSize(class); got != tt.wantChunk {
			t.Fatalf("ClassFor(%d) chunk = %d, want %d", tt.size, got, tt.wantChunk)
		}
	}
	if _, err := a.ClassFor(2 << 20); err == nil {
		t.Fatal("oversized item must error")
	}
}

func TestSlabAllocFreeReuse(t *testing.T) {
	a := newTestSlab(t, 1<<20, WithSlabSize(1<<10), WithMinChunk(100), WithGrowFactor(2))
	h1, err := a.Alloc("a", 90)
	if err != nil {
		t.Fatal(err)
	}
	if owner, ok := a.Owner(h1); !ok || owner != "a" {
		t.Fatalf("Owner = %q, %v", owner, ok)
	}
	h2, err := a.Alloc("b", 90)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("distinct allocations share a chunk")
	}
	a.Free(h1)
	if _, ok := a.Owner(h1); ok {
		t.Fatal("freed chunk still owned")
	}
	h3, err := a.Alloc("c", 50)
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h1 {
		t.Fatalf("free chunk not reused: got %+v want %+v", h3, h1)
	}
}

func TestSlabDoubleFreePanics(t *testing.T) {
	a := newTestSlab(t, 1<<20, WithSlabSize(1<<10))
	h, err := a.Alloc("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(h)
	defer func() {
		if recover() == nil {
			t.Fatal("double free should panic")
		}
	}()
	a.Free(h)
}

// TestSlabCalcification reproduces §5's failure mode: once every slab is
// assigned to the small class, large allocations fail even though most
// memory is free.
func TestSlabCalcification(t *testing.T) {
	// 4 slabs of 1 KiB; classes 100 and 200... (factor 2: 100, 200, 400,
	// 800, 1024).
	a := newTestSlab(t, 4<<10, WithSlabSize(1<<10), WithMinChunk(100), WithGrowFactor(2))
	// Consume all four slabs with small items.
	var handles []Handle
	for i := 0; ; i++ {
		h, err := a.Alloc(fmt.Sprintf("small%d", i), 100)
		if err != nil {
			break
		}
		handles = append(handles, h)
	}
	if a.SlabsAllocated() != 4 {
		t.Fatalf("slabs = %d, want 4", a.SlabsAllocated())
	}
	// Free most small items: plenty of free memory, all in class 0.
	for _, h := range handles[:len(handles)-1] {
		a.Free(h)
	}
	// A large item still cannot be placed: calcification.
	if _, err := a.Alloc("big", 800); err != ErrNoMemory {
		t.Fatalf("expected ErrNoMemory from calcified allocator, got %v", err)
	}
	bigClass, err := a.ClassFor(800)
	if err != nil {
		t.Fatal(err)
	}
	if a.HasFreeChunk(bigClass) {
		t.Fatal("big class should have no free chunks")
	}

	// Twemcache's escape hatch: random slab eviction.
	evicted, ok := a.ReassignRandomSlab(bigClass)
	if !ok {
		t.Fatal("ReassignRandomSlab should find a donor")
	}
	// The donor slab held at most one live small item.
	if len(evicted) > 1 {
		t.Fatalf("evicted %d owners, want <= 1", len(evicted))
	}
	if _, err := a.Alloc("big", 800); err != nil {
		t.Fatalf("large alloc after slab reassignment: %v", err)
	}
}

func TestSlabReassignNoDonor(t *testing.T) {
	a := newTestSlab(t, 1<<10, WithSlabSize(1<<10), WithMinChunk(100), WithGrowFactor(2))
	if _, err := a.Alloc("x", 100); err != nil {
		t.Fatal(err)
	}
	// Only one slab exists and it belongs to class 0 already.
	if _, ok := a.ReassignRandomSlab(0); ok {
		t.Fatal("no donor should be available for the same class")
	}
}

func TestSlabStats(t *testing.T) {
	a := newTestSlab(t, 2<<10, WithSlabSize(1<<10), WithMinChunk(100), WithGrowFactor(2))
	if _, err := a.Alloc("a", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc("b", 900); err != nil {
		t.Fatal(err)
	}
	stats := a.Stats()
	var used, slabs int
	for _, s := range stats {
		used += s.UsedChunks
		slabs += s.Slabs
	}
	if used != 2 {
		t.Fatalf("used chunks = %d, want 2", used)
	}
	if slabs != 2 || a.SlabsAllocated() != 2 || a.MaxSlabs() != 2 {
		t.Fatalf("slabs = %d/%d/%d, want 2/2/2", slabs, a.SlabsAllocated(), a.MaxSlabs())
	}
}

// TestSlabChurn stress-tests alloc/free cycles with accounting checks.
func TestSlabChurn(t *testing.T) {
	a := newTestSlab(t, 8<<10, WithSlabSize(1<<10), WithMinChunk(64), WithGrowFactor(2), WithSlabSeed(3))
	live := make(map[string]Handle)
	sizes := []int64{60, 120, 250, 500, 1000}
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("k%d", i%200)
		if h, ok := live[key]; ok {
			a.Free(h)
			delete(live, key)
			continue
		}
		h, err := a.Alloc(key, sizes[i%len(sizes)])
		if err != nil {
			// Out of memory: drop an arbitrary live item and retry.
			for k, lh := range live {
				a.Free(lh)
				delete(live, k)
				break
			}
			continue
		}
		live[key] = h
	}
	stats := a.Stats()
	var used int
	for _, s := range stats {
		used += s.UsedChunks
	}
	if used != len(live) {
		t.Fatalf("allocator reports %d used chunks, expected %d", used, len(live))
	}
	for key, h := range live {
		owner, ok := a.Owner(h)
		if !ok || owner != key {
			t.Fatalf("handle for %s lost (owner=%q ok=%v)", key, owner, ok)
		}
	}
}
