package camp

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero capacity must error")
	}
	if _, err := New(-1); err == nil {
		t.Fatal("negative capacity must error")
	}
	if _, err := New(100, WithShards(3)); err == nil {
		t.Fatal("non-power-of-two shards must error")
	}
	if _, err := New(100, WithShards(8192)); err == nil {
		t.Fatal("too many shards must error")
	}
	if _, err := New(100, WithPolicy(PolicyKind(99))); err == nil {
		t.Fatal("unknown policy must error")
	}
	if _, err := New(100, WithEntryOverhead(-1)); err == nil {
		t.Fatal("negative overhead must error")
	}
	if _, err := New(100, WithDefaultCost(-1)); err == nil {
		t.Fatal("negative default cost must error")
	}
	if _, err := New(100, WithPooledPolicy(nil)); err == nil {
		t.Fatal("empty pool list must error")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("unexpected hit")
	}
	if !c.Set("k", []byte("hello"), 100) {
		t.Fatal("Set failed")
	}
	v, ok := c.Get("k")
	if !ok || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	e, ok := c.Peek("k")
	if !ok || e.Cost != 100 || e.Size != int64(len("k")+len("hello")) {
		t.Fatalf("Peek = %+v", e)
	}
	if !c.Contains("k") || c.Len() != 1 {
		t.Fatal("Contains/Len broken")
	}
	if !c.Delete("k") || c.Delete("k") {
		t.Fatal("Delete semantics broken")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("deleted key should miss")
	}
}

func TestCacheValueMapStaysInSync(t *testing.T) {
	c, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	// Fill, then force evictions and check no stale values linger.
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		c.Set(key, []byte("0123456789"), 1)
	}
	live := 0
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		v, ok := c.Get(key)
		if ok {
			live++
			if string(v) != "0123456789" {
				t.Fatalf("corrupt value for %s: %q", key, v)
			}
		}
	}
	if live != c.Len() {
		t.Fatalf("live values %d != Len %d", live, c.Len())
	}
	if c.Used() > c.Capacity() {
		t.Fatalf("Used %d > Capacity %d", c.Used(), c.Capacity())
	}
}

func TestCacheTooLargeValue(t *testing.T) {
	c, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Set("k", make([]byte, 100), 1) {
		t.Fatal("oversized value must be rejected")
	}
	if c.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d", c.Stats().Rejected)
	}
	// A failed grow of an existing entry must also drop its value.
	if !c.Set("k", []byte("ok"), 1) {
		t.Fatal("small value should fit")
	}
	if c.Set("k", make([]byte, 100), 1) {
		t.Fatal("oversized update must be rejected")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry dropped by failed update must not return a value")
	}
}

func TestCacheDefaultCost(t *testing.T) {
	c, err := New(1<<20, WithDefaultCost(7))
	if err != nil {
		t.Fatal(err)
	}
	c.Set("k", []byte("v"), 0)
	e, _ := c.Peek("k")
	if e.Cost != 7 {
		t.Fatalf("cost = %d, want default 7", e.Cost)
	}
	c.Set("k2", []byte("v"), 123)
	e2, _ := c.Peek("k2")
	if e2.Cost != 123 {
		t.Fatalf("cost = %d, want 123", e2.Cost)
	}
}

func TestCacheEntryOverhead(t *testing.T) {
	c, err := New(1<<20, WithEntryOverhead(56))
	if err != nil {
		t.Fatal(err)
	}
	c.Set("key", []byte("value"), 1)
	e, _ := c.Peek("key")
	if want := int64(3 + 5 + 56); e.Size != want {
		t.Fatalf("size = %d, want %d", e.Size, want)
	}
}

func TestCacheSetSized(t *testing.T) {
	c, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	c.SetSized("k", []byte("tiny"), 4096, 10)
	e, _ := c.Peek("k")
	if e.Size != 4096 {
		t.Fatalf("size = %d, want 4096", e.Size)
	}
	if c.Used() != 4096 {
		t.Fatalf("Used = %d", c.Used())
	}
}

func TestCacheEvictionHook(t *testing.T) {
	var mu sync.Mutex
	var evicted []string
	hook := func(e Entry) {
		mu.Lock()
		evicted = append(evicted, e.Key)
		mu.Unlock()
	}
	c, err := New(30, WithPolicy(LRU), WithEvictionHook(hook))
	if err != nil {
		t.Fatal(err)
	}
	c.SetSized("a", nil, 10, 1)
	c.SetSized("b", nil, 10, 1)
	c.SetSized("c", nil, 21, 1) // 10+10+21 > 30: evicts a and b
	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 2 || evicted[0] != "a" || evicted[1] != "b" {
		t.Fatalf("evicted = %v, want [a b]", evicted)
	}
}

func TestCachePolicies(t *testing.T) {
	kinds := []PolicyKind{CAMP, LRU, GDS, ARC, TwoQ, LFU, GDWheel}
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			c, err := New(10000, WithPolicy(k))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 5000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(200))
				if _, ok := c.Get(key); !ok {
					c.Set(key, make([]byte, rng.Intn(200)+1), int64(rng.Intn(1000)))
				}
			}
			st := c.Stats()
			if st.Hits == 0 || st.Misses == 0 || st.Evictions == 0 {
				t.Fatalf("workload not exercising the policy: %+v", st)
			}
			if c.Used() > c.Capacity() {
				t.Fatal("over capacity")
			}
		})
	}
}

func TestCachePooledPolicy(t *testing.T) {
	pools := []PoolSpec{
		{Name: "cheap", MinCost: 0, MaxCost: 100, Weight: 1},
		{Name: "dear", MinCost: 100, MaxCost: 0, Weight: 1},
	}
	c, err := New(2000, WithPooledPolicy(pools))
	if err != nil {
		t.Fatal(err)
	}
	c.SetSized("gold", nil, 100, 10000)
	for i := 0; i < 100; i++ {
		c.SetSized(fmt.Sprintf("c%d", i), nil, 100, 1)
	}
	if !c.Contains("gold") {
		t.Fatal("pooled isolation broken")
	}
}

func TestCacheCAMPPrecisionAndQueues(t *testing.T) {
	c, err := New(1<<20, WithPrecision(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 300; i++ {
		c.SetSized(fmt.Sprintf("k%d", i), nil, 100, int64(i*7))
	}
	if c.QueueCount() == 0 {
		t.Fatal("CAMP cache should report queues")
	}
	lru, err := New(1<<20, WithPolicy(LRU))
	if err != nil {
		t.Fatal(err)
	}
	lru.SetSized("x", nil, 1, 1)
	if lru.QueueCount() != 0 {
		t.Fatal("LRU cache should report zero queues")
	}
}

func TestCacheSharding(t *testing.T) {
	c, err := New(1<<20, WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 8 {
		t.Fatalf("Shards = %d", c.Shards())
	}
	if c.Capacity() != 1<<20 {
		t.Fatalf("Capacity = %d, want %d (shares must sum)", c.Capacity(), 1<<20)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k%d", i)
		if !c.Set(key, []byte{byte(i)}, 1) {
			t.Fatalf("Set %s failed", key)
		}
	}
	if c.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", c.Len())
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k%d", i)
		v, ok := c.Get(key)
		if !ok || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("Get %s = %v, %v", key, v, ok)
		}
	}
}

// TestCacheConcurrent hammers a sharded cache from many goroutines; run
// under -race this validates the locking discipline.
func TestCacheConcurrent(t *testing.T) {
	c, err := New(1<<16, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(500))
				switch rng.Intn(4) {
				case 0:
					c.Set(key, make([]byte, rng.Intn(100)+1), int64(rng.Intn(100)+1))
				case 1:
					c.Delete(key)
				default:
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > c.Capacity() {
		t.Fatal("over capacity after concurrent run")
	}
	// All surviving values must be readable.
	st := c.Stats()
	if st.Sets == 0 {
		t.Fatal("no sets recorded")
	}
}

func TestPolicyConstructors(t *testing.T) {
	ps := []Policy{
		NewCAMPPolicy(100, DefaultPrecision),
		NewLRUPolicy(100),
		NewGDSPolicy(100),
	}
	pooled, err := NewPooledLRUPolicy(100, []PoolSpec{{Name: "all", Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ps = append(ps, pooled)
	for _, p := range ps {
		if !p.Set("k", 10, 5) {
			t.Fatalf("%s: Set failed", p.Name())
		}
		if !p.Get("k") {
			t.Fatalf("%s: Get missed", p.Name())
		}
		if p.Capacity() != 100 {
			t.Fatalf("%s: Capacity = %d", p.Name(), p.Capacity())
		}
	}
}

func TestPolicyKindString(t *testing.T) {
	want := map[PolicyKind]string{
		CAMP: "camp", LRU: "lru", GDS: "gds", ARC: "arc",
		TwoQ: "2q", LFU: "lfu", GDWheel: "gdwheel",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if PolicyKind(42).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestCacheAdmissionOption(t *testing.T) {
	if _, err := New(100, WithAdmission(0)); err == nil {
		t.Fatal("zero admission frequency must error")
	}
	c, err := New(100, WithPolicy(LRU), WithAdmission(2))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the cache with popular keys.
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("hot%d", i)
		c.Get(key)
		c.Get(key)
		if !c.SetSized(key, nil, 10, 1) {
			t.Fatalf("popular key %s rejected", key)
		}
	}
	// A one-hit wonder cannot displace them.
	c.Get("wonder")
	if c.SetSized("wonder", nil, 10, 1) {
		t.Fatal("one-hit wonder should be rejected")
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
}
