// Evolving reproduces the paper's §3.1 adaptation story at example scale:
// the workload shifts abruptly between applications with disjoint key sets
// (era 1's keys are never requested again after era 2 begins). A statically
// partitioned pooled cache cannot rebalance; CAMP reclaims the dead
// application's memory automatically while still serving each era's
// expensive keys far better than LRU.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"camp"
)

const (
	cacheBytes = 2 << 20 // 2 MiB cache
	erasKeys   = 4000    // 4 MiB working set per era -> cache ratio 0.5
	eraReqs    = 150_000
)

func main() {
	pools := []camp.PoolSpec{
		{Name: "cheap", MinCost: 0, MaxCost: 1000, Weight: 1},
		{Name: "dear", MinCost: 1000, MaxCost: 0, Weight: 1000},
	}

	fmt.Println("Workload: three eras with disjoint keys; each era is 150K skewed")
	fmt.Println("requests over a 4 MiB working set; the cache is 2 MiB.")
	fmt.Println()
	fmt.Printf("%-8s %14s %14s %14s %10s %10s\n",
		"policy", "era1 misscost", "era2 misscost", "era3 misscost", "missrate", "era1 left")

	type result struct {
		name     string
		costs    [3]int64
		missRate float64
		held     int64
	}
	var results []result
	run := func(name string, opts ...camp.Option) {
		c, err := camp.New(cacheBytes, opts...)
		if err != nil {
			log.Fatal(err)
		}
		costs, missRate := replay(c)
		results = append(results, result{name: name, costs: costs, missRate: missRate, held: era1Bytes(c)})
	}
	run("lru", camp.WithPolicy(camp.LRU))
	run("pooled", camp.WithPooledPolicy(pools))
	run("camp")

	for _, r := range results {
		fmt.Printf("%-8s %14d %14d %14d %10.3f %7dKiB\n",
			r.name, r.costs[0], r.costs[1], r.costs[2], r.missRate, r.held>>10)
	}

	fmt.Println()
	fmt.Println("LRU treats a 500000-cost key like a 200-cost one and pays for it.")
	fmt.Println("Pooled LRU matches CAMP's miss cost only because an operator gave")
	fmt.Println("its expensive pool 99.9% of memory in advance — and it pays with a")
	fmt.Println("near-total miss rate on the cheap keys (the paper's Figure 5d).")
	fmt.Println("CAMP needs no tuning, adapts to each era, and flushes dead")
	fmt.Println("expensive keys once newer expensive traffic needs the space.")
}

// replay runs the three eras, returning each era's warm-miss cost and the
// overall warm miss rate.
func replay(c *camp.Cache) ([3]int64, float64) {
	rng := rand.New(rand.NewSource(31))
	var out [3]int64
	var warm, warmMiss int64
	for era := 0; era < 3; era++ {
		prefix := fmt.Sprintf("era%d:", era)
		seen := make(map[string]bool)
		for i := 0; i < eraReqs; i++ {
			// 70/20 skew within the era's keys.
			var id int
			if rng.Float64() < 0.7 {
				id = rng.Intn(erasKeys / 5)
			} else {
				id = rng.Intn(erasKeys)
			}
			key := prefix + fmt.Sprint(id)
			// A third of each era's keys are expensive, so newer
			// expensive items alone overflow the cache within two
			// eras — the §3.1 condition that guarantees stale
			// expensive keys get flushed.
			var size, cost int64 = 1 << 10, 200
			if id%3 == 0 {
				cost = 500_000
			}
			_, hit := c.Get(key)
			if !hit {
				c.SetSized(key, nil, size, cost)
			}
			if seen[key] {
				warm++
				if !hit {
					warmMiss++
					out[era] += cost
				}
			}
			seen[key] = true
		}
	}
	return out, float64(warmMiss) / float64(warm)
}

// era1Bytes reports how much memory still belongs to era-1 keys.
func era1Bytes(c *camp.Cache) int64 {
	var held int64
	for id := 0; id < erasKeys; id++ {
		if e, ok := c.Peek("era0:" + fmt.Sprint(id)); ok {
			held += e.Size
		}
	}
	return held
}
