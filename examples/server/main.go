// Server spins up an in-process IQ-mode KVS (the §4 implementation), talks
// to it over real TCP with the bundled client, and shows the server deriving
// key costs from miss-to-set latency — no application changes needed.
package main

import (
	"fmt"
	"log"
	"time"

	"camp/internal/kvclient"
	"camp/internal/kvserver"
)

func main() {
	srv, err := kvserver.New(kvserver.Config{
		MemoryBytes: 1 << 20,
		Policy:      "camp",
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("server listening on", srv.Addr())

	cli, err := kvclient.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// The IQ pattern: a get miss starts the clock; computing the value
	// takes time; the set stops the clock and becomes the key's cost.
	if _, ok, err := cli.Get("report:q3"); err != nil {
		log.Fatal(err)
	} else if ok {
		log.Fatal("unexpected hit on an empty cache")
	}

	fmt.Println("cache miss -> computing the quarterly report (simulated 120ms)...")
	time.Sleep(120 * time.Millisecond)

	if err := cli.Set("report:q3", []byte("42 pages of numbers"), 0, 0, 0); err != nil {
		log.Fatal(err)
	}

	line, ok, err := cli.Debug("report:q3")
	if err != nil || !ok {
		log.Fatal("debug failed: ", err)
	}
	fmt.Println("server-derived metadata:", line)

	// Cheap values set immediately get the default cost of 1, so under
	// pressure the report outlives them.
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("tmp:%d", i)
		if err := cli.Set(key, make([]byte, 400), 0, 0, 0); err != nil {
			log.Fatal(err)
		}
	}
	if _, ok, _ := cli.Get("report:q3"); ok {
		fmt.Println("after 2000 cheap inserts the expensive report is still cached")
	}

	stats, err := cli.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: items=%s bytes=%s evictions=%s policy=%s\n",
		stats["curr_items"], stats["bytes"], stats["evictions"], stats["policy"])
}
