// Webproxy demonstrates CAMP in Greedy-Dual-Size's original domain (Cao &
// Irani, USITS'97): a forward web proxy caching documents of wildly varying
// sizes and fetch latencies. Cost is the simulated network fetch time, so a
// better policy saves real wall-clock latency for clients.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"camp"
)

// site models an origin server with a latency profile.
type site struct {
	name    string
	pages   int
	minSize int64
	maxSize int64
	rttUS   int64 // per-fetch latency in microseconds
	weight  float64
}

var sites = []site{
	{name: "cdn.local", pages: 5000, minSize: 2 << 10, maxSize: 32 << 10, rttUS: 3_000, weight: 0.55},
	{name: "regional.example", pages: 2000, minSize: 8 << 10, maxSize: 256 << 10, rttUS: 40_000, weight: 0.30},
	{name: "overseas.example", pages: 800, minSize: 4 << 10, maxSize: 1 << 20, rttUS: 350_000, weight: 0.15},
}

func main() {
	const cacheBytes = 64 << 20
	lru := replay(camp.LRU, cacheBytes)
	cam := replay(camp.CAMP, cacheBytes)

	fmt.Printf("%-6s  latency paid on misses: %8.1f s\n", "LRU", lru)
	fmt.Printf("%-6s  latency paid on misses: %8.1f s\n", "CAMP", cam)
	if cam < lru {
		fmt.Printf("\nCAMP saved %.1f seconds of user-visible fetch latency (%.0f%%)\n",
			lru-cam, 100*(lru-cam)/lru)
	}
}

func replay(kind camp.PolicyKind, capacity int64) (missLatencySeconds float64) {
	c, err := camp.New(capacity, camp.WithPolicy(kind))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(97))

	pick := func() (key string, size, cost int64) {
		r := rng.Float64()
		var s site
		for _, cand := range sites {
			if r < cand.weight {
				s = cand
				break
			}
			r -= cand.weight
		}
		if s.name == "" {
			s = sites[len(sites)-1]
		}
		// Zipf-ish popularity within the site.
		page := int(float64(s.pages) * rng.Float64() * rng.Float64())
		key = fmt.Sprintf("%s/page/%d", s.name, page)
		// Deterministic per-page size from a hash-ish mix.
		span := s.maxSize - s.minSize
		size = s.minSize + int64(page*2654435761)%(span+1)
		if size < s.minSize {
			size = s.minSize
		}
		// Fetch time = RTT + transfer at ~100 MB/s.
		cost = s.rttUS + size/100
		return key, size, cost
	}

	seen := make(map[string]bool)
	var missMicros int64
	for i := 0; i < 400_000; i++ {
		key, size, cost := pick()
		_, hit := c.Get(key)
		if !hit {
			c.SetSized(key, nil, size, cost)
			if seen[key] {
				missMicros += cost
			}
		}
		seen[key] = true
	}
	return float64(missMicros) / 1e6
}
