// Persistent boots an AOF-backed KVS, warms it with a skewed workload of
// costed entries, kills the server without any graceful shutdown, restarts
// it from the same data directory, and shows the warm restart serving the
// same hit rate — working set and learned per-key costs intact. Without
// persistence every restart would pay the full cost-miss penalty again.
package main

import (
	"fmt"
	"log"
	"os"

	"camp/internal/kvclient"
	"camp/internal/kvserver"
	"camp/internal/persist"
	"camp/internal/trace"
)

func main() {
	dir, err := os.MkdirTemp("", "campsrv-demo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("data dir:", dir)

	cfg := kvserver.Config{
		MemoryBytes: 256 << 10, // small on purpose: CAMP must choose what to keep
		Policy:      "camp",
		DisableIQ:   true, // costs are passed explicitly below
		Persist: &kvserver.PersistConfig{
			Dir:   dir,
			Fsync: persist.FsyncAlways, // crash-proof acks for the demo
			Logf:  log.Printf,
		},
	}

	srv, err := kvserver.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}

	// Warm the cache: a hotspot workload where cost spans four orders of
	// magnitude, so eviction decisions genuinely depend on the learned
	// costs the journal must preserve.
	genCfg := trace.Config{
		Keys:     4000,
		Requests: 8000,
		Seed:     1,
		Size:     trace.SizeUniform(80, 200),
		Cost:     trace.CostChoice(1, 100, 10000),
	}
	cli := dial(srv)
	g := trace.NewGenerator(genCfg)
	for {
		req, ok := g.Next()
		if !ok {
			break
		}
		if err := cli.Set(req.Key, make([]byte, req.Size), 0, 0, req.Cost); err != nil {
			log.Fatal(err)
		}
	}
	before := hitRate(cli, genCfg)
	fmt.Printf("warm hit rate before kill: %.1f%%\n", 100*before)

	// Kill it: close the TCP side and abandon the server. No shutdown
	// snapshot, no journal flush beyond what each acknowledged set already
	// forced to disk.
	cli.Close()
	srv.Kill()
	fmt.Println("server killed (no graceful shutdown)")

	// Restart from the same directory. Recovery replays the journal
	// through the CAMP policy, rebuilding its queues with the original
	// costs.
	srv2, err := kvserver.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv2.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()

	cli2 := dial(srv2)
	defer cli2.Close()
	after := hitRate(cli2, genCfg)
	fmt.Printf("warm hit rate after restart: %.1f%%\n", 100*after)
	stats, err := cli2.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery replayed %s journal ops (persist_gen %s)\n",
		stats["restored_aof_ops"], stats["persist_gen"])
	if before != after {
		fmt.Println("NOTE: hit rates differ — is the journal order being preserved?")
	} else {
		fmt.Println("restart kept the working set and its costs: hit rates match exactly")
	}
}

func dial(srv *kvserver.Server) *kvclient.Client {
	cli, err := kvclient.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	return cli
}

// hitRate replays the workload's reference stream read-only.
func hitRate(cli *kvclient.Client, cfg trace.Config) float64 {
	g := trace.NewGenerator(cfg)
	hits, total := 0, 0
	for {
		req, ok := g.Next()
		if !ok {
			break
		}
		total++
		if _, ok, err := cli.Get(req.Key); err != nil {
			log.Fatal(err)
		} else if ok {
			hits++
		}
	}
	return float64(hits) / float64(total)
}
