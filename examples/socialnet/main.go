// Socialnet reproduces the paper's §1 motivating scenario: one cache shared
// by two applications of a social-networking site — member profiles
// (millions of keys, each a few-millisecond database lookup) and display
// advertisements (thousands of keys, each the output of an hours-long
// machine-learning pipeline).
//
// The example replays the same interleaved workload against an LRU cache
// and a CAMP cache of identical size and reports the recomputation time
// each policy's misses would incur.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"camp"
)

const (
	numProfiles = 40_000
	profileSize = 2 << 10 // 2 KiB rows
	profileCost = 4_000   // 4 ms as microseconds

	numAds  = 400
	adSize  = 16 << 10      // 16 KiB model outputs
	adCost  = 7_200_000_000 // 2 hours as microseconds
	adShare = 0.05          // 5% of requests hit the ad application
)

func main() {
	for _, kind := range []camp.PolicyKind{camp.LRU, camp.CAMP} {
		missCost, missRate := replay(kind)
		fmt.Printf("%-5s  warm miss rate %.3f   recomputation due to misses: %s\n",
			kind, missRate, humanDuration(missCost))
	}
	fmt.Println("\nCAMP spends the shared memory where misses hurt most: the ad")
	fmt.Println("pipeline's outputs stay resident, while LRU lets profile churn")
	fmt.Println("evict them and pays hours of recomputation.")
}

func replay(kind camp.PolicyKind) (missCostMicros int64, missRate float64) {
	c, err := camp.New(24<<20, camp.WithPolicy(kind)) // 24 MiB shared cache
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2014))
	seen := make(map[string]bool)
	var warm, warmMisses int64

	for i := 0; i < 600_000; i++ {
		var key string
		var size int
		var cost int64
		if rng.Float64() < adShare {
			key = fmt.Sprintf("ad:%d", rng.Intn(numAds))
			size, cost = adSize, adCost
		} else {
			// 70/20 skew over profiles, like the paper's BG trace.
			var id int
			if rng.Float64() < 0.7 {
				id = rng.Intn(numProfiles / 5)
			} else {
				id = rng.Intn(numProfiles)
			}
			key = fmt.Sprintf("profile:%d", id)
			size, cost = profileSize, profileCost
		}

		_, hit := c.Get(key)
		if !hit {
			c.SetSized(key, nil, int64(size), cost)
		}
		if seen[key] {
			warm++
			if !hit {
				warmMisses++
				missCostMicros += cost
			}
		}
		seen[key] = true
	}
	if warm > 0 {
		missRate = float64(warmMisses) / float64(warm)
	}
	return missCostMicros, missRate
}

func humanDuration(micros int64) string {
	switch {
	case micros >= 3_600_000_000:
		return fmt.Sprintf("%.1f hours", float64(micros)/3_600_000_000)
	case micros >= 60_000_000:
		return fmt.Sprintf("%.1f minutes", float64(micros)/60_000_000)
	case micros >= 1_000_000:
		return fmt.Sprintf("%.1f seconds", float64(micros)/1_000_000)
	default:
		return fmt.Sprintf("%d us", micros)
	}
}
