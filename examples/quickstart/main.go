// Quickstart: create a CAMP cache, store values with costs, and watch the
// policy keep expensive entries alive through cheap churn.
package main

import (
	"fmt"
	"log"

	"camp"
)

func main() {
	// 64 KiB cache using the CAMP policy at the paper's precision 5.
	c, err := camp.New(64<<10,
		camp.WithPrecision(camp.DefaultPrecision),
		camp.WithEvictionHook(func(e camp.Entry) {
			// Evictions are observable; production code might log
			// or count them.
			_ = e
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A key-value pair's cost is whatever a miss costs *you*: the paper
	// uses recomputation time. Here, microseconds to recompute.
	c.Set("user:42:profile", []byte(`{"name":"Ada"}`), 800)          // cheap DB lookup
	c.Set("ads:model:v3", make([]byte, 4096), 45_000_000)            // 45s ML job
	c.Set("frontpage:html", []byte("<html>cached page</html>"), 950) // render

	if v, ok := c.Get("user:42:profile"); ok {
		fmt.Printf("hit: user:42:profile (%d bytes)\n", len(v))
	}

	// Flood the cache with cheap entries far beyond its capacity. LRU
	// would wash the ML result away; CAMP keeps it because evicting it
	// would cost 45 seconds to undo.
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("session:%d", i)
		c.Set(key, make([]byte, 256), 500)
	}

	if _, ok := c.Get("ads:model:v3"); ok {
		fmt.Println("the 45-second ML result survived 10,000 cheap inserts")
	} else {
		fmt.Println("unexpected: the expensive entry was evicted")
	}

	stats := c.Stats()
	fmt.Printf("stats: %d hits, %d misses, %d evictions, %d bytes used of %d\n",
		stats.Hits, stats.Misses, stats.Evictions, c.Used(), c.Capacity())
	fmt.Printf("CAMP is maintaining %d LRU queues\n", c.QueueCount())
}
