package camp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetOrComputeBasic(t *testing.T) {
	c, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	get := func() ([]byte, error) {
		return c.GetOrCompute("k", func() ([]byte, int64, error) {
			calls++
			return []byte("computed"), 123, nil
		})
	}
	v, err := get()
	if err != nil || string(v) != "computed" {
		t.Fatalf("GetOrCompute = %q, %v", v, err)
	}
	// Second call is a cache hit; compute must not run again.
	v, err = get()
	if err != nil || string(v) != "computed" {
		t.Fatalf("GetOrCompute(hit) = %q, %v", v, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	e, ok := c.Peek("k")
	if !ok || e.Cost != 123 {
		t.Fatalf("Peek = %+v, %v", e, ok)
	}
}

func TestGetOrComputeDerivesCost(t *testing.T) {
	c, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.GetOrCompute("slow", func() ([]byte, int64, error) {
		time.Sleep(25 * time.Millisecond)
		return []byte("x"), 0, nil // cost 0: derive from elapsed time
	})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c.Peek("slow")
	if !ok {
		t.Fatal("entry missing")
	}
	if e.Cost < 15_000 || e.Cost > 10_000_000 {
		t.Fatalf("derived cost = %dus, want ~25000", e.Cost)
	}
}

func TestGetOrComputeError(t *testing.T) {
	c, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := c.GetOrCompute("k", func() ([]byte, int64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Contains("k") {
		t.Fatal("failed compute must not cache")
	}
	// A later successful compute works.
	if _, err := c.GetOrCompute("k", func() ([]byte, int64, error) {
		return []byte("ok"), 1, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestGetOrComputeSingleflight: N concurrent callers share one compute.
func TestGetOrComputeSingleflight(t *testing.T) {
	c, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	const callers = 16
	results := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrCompute("dedup", func() ([]byte, int64, error) {
				computes.Add(1)
				<-release
				return []byte("shared"), 1, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = string(v)
		}(i)
	}
	// Give the flight time to pile up, then release it.
	time.Sleep(30 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, r := range results {
		if r != "shared" {
			t.Fatalf("caller %d got %q", i, r)
		}
	}
}

// TestGetOrComputeDistinctKeysParallel: flights for different keys do not
// serialize each other.
func TestGetOrComputeDistinctKeysParallel(t *testing.T) {
	c, err := New(1<<20, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			if _, err := c.GetOrCompute(key, func() ([]byte, int64, error) {
				time.Sleep(50 * time.Millisecond)
				return []byte(key), 0, nil
			}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	// Serialized, this would take ~400ms.
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("distinct keys appear serialized: %v", elapsed)
	}
}
