// Command campload replays a reference trace against a running campsrv (or
// any memcached-text-protocol server that accepts the optional cost token),
// reporting the §3 metrics: miss rate and cost-miss ratio with cold
// requests excluded, plus throughput.
//
// Usage:
//
//	campload -addr 127.0.0.1:11211 [-trace file] [-keys n] [-requests n]
//	         [-seed n] [-conns n] [-iq]
//
// Without -trace it generates the paper's BG workload on the fly. With -iq
// the client omits costs so the server derives them from miss-to-set
// latency.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"camp/internal/kvclient"
	"camp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "server address")
		traceFile = flag.String("trace", "", "trace file (text or binary); empty generates a BG trace")
		keys      = flag.Int("keys", 20000, "generated trace: number of keys")
		requests  = flag.Int64("requests", 200000, "generated trace: number of requests")
		seed      = flag.Int64("seed", 1, "generated trace: random seed")
		conns     = flag.Int("conns", 1, "concurrent client connections")
		iq        = flag.Bool("iq", false, "omit costs so the server derives them (IQ mode)")
	)
	flag.Parse()

	reqs, err := loadTrace(*traceFile, *seed, *keys, *requests)
	if err != nil {
		return err
	}

	var (
		mu                   sync.Mutex
		seen                 = make(map[string]struct{}, len(reqs)/4)
		warmHits, warmMisses int64
		missCost, totalCost  int64
	)
	work := make(chan trace.Request)
	var wg sync.WaitGroup
	errs := make(chan error, *conns)
	start := time.Now()
	for i := 0; i < *conns; i++ {
		cli, err := kvclient.Dial(*addr)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cli.Close()
			for r := range work {
				mu.Lock()
				_, warm := seen[r.Key]
				if !warm {
					seen[r.Key] = struct{}{}
				}
				mu.Unlock()
				_, hit, err := cli.Get(r.Key)
				if err != nil {
					errs <- err
					return
				}
				if !hit {
					cost := r.Cost
					if *iq {
						cost = 0
					}
					err := cli.Set(r.Key, make([]byte, r.Size), 0, 0, cost)
					if err != nil && !errors.Is(err, kvclient.ErrServer) {
						errs <- err
						return
					}
				}
				if warm {
					mu.Lock()
					totalCost += r.Cost
					if hit {
						warmHits++
					} else {
						warmMisses++
						missCost += r.Cost
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, r := range reqs {
		work <- r
	}
	close(work)
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	elapsed := time.Since(start)

	warm := warmHits + warmMisses
	fmt.Printf("requests:        %d (%d warm)\n", len(reqs), warm)
	fmt.Printf("elapsed:         %v (%.0f req/s)\n", elapsed.Round(time.Millisecond),
		float64(len(reqs))/elapsed.Seconds())
	if warm > 0 {
		fmt.Printf("miss rate:       %.4f\n", float64(warmMisses)/float64(warm))
	}
	if totalCost > 0 {
		fmt.Printf("cost-miss ratio: %.4f\n", float64(missCost)/float64(totalCost))
	}
	return nil
}

func loadTrace(path string, seed int64, keys int, requests int64) ([]trace.Request, error) {
	if path == "" {
		return trace.Materialize(trace.NewBGTrace(seed, keys, requests))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return trace.Materialize(trace.NewBinaryReader(f))
	}
	return trace.Materialize(trace.NewTextReader(f))
}
