package main

import (
	"os"
	"path/filepath"
	"testing"

	"camp/internal/trace"
)

func TestLoadTraceGenerated(t *testing.T) {
	reqs, err := loadTrace("", 7, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 500 {
		t.Fatalf("got %d requests, want 500", len(reqs))
	}
}

func TestLoadTraceTextFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteText(f, trace.NewBGTrace(3, 20, 100)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reqs, err := loadTrace(path, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 100 {
		t.Fatalf("got %d requests, want 100", len(reqs))
	}
}

func TestLoadTraceBinaryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteBinary(f, trace.NewBGTrace(3, 20, 100)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reqs, err := loadTrace(path, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 100 {
		t.Fatalf("got %d requests, want 100", len(reqs))
	}
}

func TestLoadTraceMissingFile(t *testing.T) {
	if _, err := loadTrace("/nonexistent/path.txt", 0, 0, 0); err == nil {
		t.Fatal("missing file should error")
	}
}
