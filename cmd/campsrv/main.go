// Command campsrv runs a standalone cost-aware key-value server speaking a
// memcached-style text protocol (see internal/kvserver for the grammar).
//
// Usage:
//
//	campsrv -addr 127.0.0.1:11211 -mem 64MiB -policy camp [-mode byte|slab|buddy]
//	        [-precision 5] [-no-iq]
//
// In IQ mode (default) the server derives each key's cost from the elapsed
// time between a get miss and the subsequent set, as in the paper's §4
// deployment.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"camp/internal/kvserver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campsrv:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "listen address")
		mem       = flag.String("mem", "64MiB", "cache memory (e.g. 512KiB, 64MiB, 2GiB)")
		policy    = flag.String("policy", "camp", "eviction policy: camp, lru or gds")
		mode      = flag.String("mode", "byte", "memory management: byte, slab or buddy")
		precision = flag.Uint("precision", 5, "CAMP rounding precision (0 = infinite)")
		noIQ      = flag.Bool("no-iq", false, "disable IQ miss-to-set cost derivation")
	)
	flag.Parse()

	bytes, err := parseSize(*mem)
	if err != nil {
		return err
	}
	srv, err := kvserver.New(kvserver.Config{
		Addr:        *addr,
		MemoryBytes: bytes,
		Policy:      *policy,
		Mode:        *mode,
		Precision:   *precision,
		DisableIQ:   *noIQ,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("campsrv listening on %s (policy=%s mode=%s mem=%d bytes)\n",
		srv.Addr(), *policy, *mode, bytes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("campsrv: shutting down")
	return srv.Close()
}

// parseSize parses sizes like "512KiB", "64MiB", "2GiB" or plain bytes.
func parseSize(s string) (int64, error) {
	units := []struct {
		suffix string
		mult   int64
	}{
		{suffix: "GiB", mult: 1 << 30},
		{suffix: "MiB", mult: 1 << 20},
		{suffix: "KiB", mult: 1 << 10},
		{suffix: "GB", mult: 1e9},
		{suffix: "MB", mult: 1e6},
		{suffix: "KB", mult: 1e3},
		{suffix: "B", mult: 1},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			n, err := strconv.ParseFloat(strings.TrimSuffix(s, u.suffix), 64)
			if err != nil {
				return 0, fmt.Errorf("bad size %q: %w", s, err)
			}
			return int64(n * float64(u.mult)), nil
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n, nil
}
