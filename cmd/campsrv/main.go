// Command campsrv runs a standalone cost-aware key-value server speaking a
// memcached-style text protocol (see internal/kvserver for the grammar).
//
// Usage:
//
//	campsrv -addr 127.0.0.1:11211 -mem 64MiB -policy camp [-mode byte|slab|buddy|arena]
//	        [-shards N] [-precision 5] [-no-iq]
//	        [-replica-of host:port [-replica-tenants a,b]]
//	        [-tenant-reserve name=bytes ...] [-tenant-quota name=ops[:bytes] ...]
//	        [-data-dir /var/lib/campsrv [-aof=true] [-fsync everysec]
//	         [-snapshot-interval 5m] [-aof-limit 64MiB]]
//
// -shards (default: one per core, capped so each shard keeps a useful
// slice of -mem) hash-partitions keys across independent stores, each with
// its own lock and its own journal under data-dir/shard-NNN/, so writes
// scale across cores. A data directory written by an older single-store
// build, or with a different -shards, is migrated in place at startup.
//
// In IQ mode (default) the server derives each key's cost from the elapsed
// time between a get miss and the subsequent set, as in the paper's §4
// deployment.
//
// With -data-dir set, mutations are journaled to an append-only log and the
// server warm-restarts from the newest snapshot plus the journal tail, so a
// deploy or crash does not throw away the working set or the per-key costs
// IQ mode spent real time learning. -aof=false switches to snapshot-only
// durability (interval and shutdown snapshots).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"camp/internal/kvserver"
	"camp/internal/persist"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campsrv:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "listen address")
		mem       = flag.String("mem", "64MiB", "cache memory (e.g. 512KiB, 64MiB, 2GiB)")
		shards    = flag.Int("shards", 0, "independent stores keys are hashed across, with per-shard locks and journals (0 = auto: GOMAXPROCS, capped so each shard keeps a useful capacity)")
		policy    = flag.String("policy", "camp", "eviction policy: camp, lru or gds")
		mode      = flag.String("mode", "byte", "memory management: byte, slab, buddy or arena (packed per-shard segments with incremental compaction)")
		precision = flag.Uint("precision", 5, "CAMP rounding precision (0 = infinite)")
		noIQ      = flag.Bool("no-iq", false, "disable IQ miss-to-set cost derivation")

		replicaOf = flag.String("replica-of", "", "start as a read-only replica of the primary at this address (shard counts must match; promote with the 'replica promote' command)")

		metricsAddr = flag.String("metrics-addr", "", "HTTP listen address serving Prometheus metrics at /metrics and pprof at /debug/pprof/ (empty = off)")
		slowlogMS   = flag.Int64("slowlog-threshold", 10, "slowlog threshold in milliseconds (0 records every command, negative disables; adjustable at runtime with 'slowlog threshold <ms>')")

		maxConns = flag.Int("max-conns", 0, "maximum concurrently served connections (0 = unlimited); accepts beyond the cap are refused and counted in accept_rejected_maxconns")
		drain    = flag.Duration("drain-timeout", 5*time.Second, "graceful shutdown: how long in-flight pipelines may finish after SIGTERM before straggler connections are closed")

		reserves = tenantReserves{}
		quotas   = tenantQuotas{}

		replicaTenants = flag.String("replica-tenants", "", "comma-separated tenant subset to replicate (requires -replica-of, byte or arena mode); the primary filters the feed to these tenants' keys")

		dataDir  = flag.String("data-dir", "", "persistence directory (empty = volatile cache)")
		aof      = flag.Bool("aof", true, "journal mutations to an append-only log (requires -data-dir)")
		fsync    = flag.String("fsync", persist.FsyncEverySec, "AOF sync policy: always, everysec or no")
		snapshot = flag.Duration("snapshot-interval", 0, "background snapshot period (0 = size-triggered only)")
		aofLimit = flag.String("aof-limit", "", "AOF size triggering compaction (default 64MiB)")
	)
	flag.Var(&reserves, "tenant-reserve", "reserve memory for a tenant as name=bytes (e.g. -tenant-reserve gold=16MiB); repeatable, byte or arena mode only")
	flag.Var(&quotas, "tenant-quota", "request quota for a tenant as name=ops[:bytes] (ops/sec shed limit, optional in-flight mutation bytes, e.g. -tenant-quota bronze=500:1MiB); repeatable, byte or arena mode only")
	flag.Parse()

	bytes, err := parseSize(*mem)
	if err != nil {
		return err
	}
	if *shards == 0 {
		*shards = defaultShards(bytes)
	}
	cfg := kvserver.Config{
		Addr:        *addr,
		MemoryBytes: bytes,
		Shards:      *shards,
		Policy:      *policy,
		Mode:        *mode,
		Precision:   *precision,
		DisableIQ:   *noIQ,
		MaxConns:    *maxConns,
		ReplicaOf:   *replicaOf,
		MetricsAddr: *metricsAddr,
	}
	if len(reserves) > 0 {
		cfg.TenantReserves = reserves
	}
	if len(quotas) > 0 {
		cfg.TenantQuotas = quotas
	}
	if *replicaTenants != "" {
		cfg.ReplicaTenants = strings.Split(*replicaTenants, ",")
	}
	switch {
	case *slowlogMS < 0:
		cfg.SlowlogThreshold = -1 // disabled
	case *slowlogMS == 0:
		cfg.SlowlogThreshold = 1 // smallest enabled threshold: records everything over 1ns
	default:
		cfg.SlowlogThreshold = time.Duration(*slowlogMS) * time.Millisecond
	}
	if *dataDir != "" {
		p := &kvserver.PersistConfig{
			Dir:              *dataDir,
			DisableAOF:       !*aof,
			Fsync:            *fsync,
			SnapshotInterval: *snapshot,
			Logf:             log.Printf,
		}
		if *aofLimit != "" {
			if p.AOFLimit, err = parseSize(*aofLimit); err != nil {
				return err
			}
		}
		cfg.Persist = p
	}
	// Installed before the server exists: a supervisor that signals right
	// after exec (or mid-recovery) must get the graceful drain below, not
	// the runtime's kill-by-default.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	start := time.Now()
	srv, err := kvserver.New(cfg)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("campsrv listening on %s (policy=%s mode=%s mem=%d bytes shards=%d)\n",
		srv.Addr(), *policy, *mode, bytes, *shards)
	if *replicaOf != "" {
		fmt.Printf("campsrv: read-only replica of %s (promote with 'replica promote')\n", *replicaOf)
		if *replicaTenants != "" {
			fmt.Printf("campsrv: replicating only tenants %s\n", *replicaTenants)
		}
	}
	if *metricsAddr != "" {
		fmt.Printf("campsrv: metrics on http://%s/metrics (pprof under /debug/pprof/)\n", srv.MetricsAddr())
	}
	if *dataDir != "" {
		fmt.Printf("campsrv: persistence in %s (aof=%v fsync=%s), recovered in %v\n",
			*dataDir, *aof, *fsync, time.Since(start).Round(time.Millisecond))
	}

	// SIGTERM/SIGINT drain gracefully: stop accepting, let in-flight
	// pipelines finish (bounded by -drain-timeout), final flush + snapshot
	// on healthy shards, exit 0.
	<-sig
	fmt.Printf("campsrv: draining (up to %v) and shutting down\n", *drain)
	return srv.Shutdown(*drain)
}

// defaultShards picks the auto -shards value: one per core, but never so
// many that a shard's slice of memory drops below the default 8 MiB value
// limit — capacity splits evenly across shards, so over-sharding a small
// cache would reject values that fit fine unsharded (and slab mode needs at
// least one whole slab per shard). An explicit -shards overrides this.
func defaultShards(memBytes int64) int {
	n := runtime.GOMAXPROCS(0)
	if max := int(memBytes / (8 << 20)); n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	return n
}

// tenantReserves implements flag.Value for the repeatable -tenant-reserve
// name=bytes flag, accumulating into the map handed to Config.TenantReserves.
type tenantReserves map[string]int64

func (r tenantReserves) String() string {
	if len(r) == 0 {
		return ""
	}
	parts := make([]string, 0, len(r))
	for name, b := range r {
		parts = append(parts, fmt.Sprintf("%s=%d", name, b))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (r tenantReserves) Set(s string) error {
	name, size, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("bad tenant reserve %q (want name=bytes)", s)
	}
	b, err := parseSize(size)
	if err != nil {
		return err
	}
	r[name] = b
	return nil
}

// tenantQuotas implements flag.Value for the repeatable -tenant-quota
// name=ops[:bytes] flag, accumulating into Config.TenantQuotas.
type tenantQuotas map[string]kvserver.TenantQuota

func (q tenantQuotas) String() string {
	if len(q) == 0 {
		return ""
	}
	parts := make([]string, 0, len(q))
	for name, tq := range q {
		parts = append(parts, fmt.Sprintf("%s=%d:%d", name, tq.OpsPerSec, tq.MaxBytesInFlight))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (q tenantQuotas) Set(s string) error {
	name, spec, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("bad tenant quota %q (want name=ops[:bytes])", s)
	}
	opsStr, bytesStr, hasBytes := strings.Cut(spec, ":")
	ops, err := strconv.ParseInt(opsStr, 10, 64)
	if err != nil {
		return fmt.Errorf("bad tenant quota ops %q: %w", s, err)
	}
	var tq kvserver.TenantQuota
	tq.OpsPerSec = ops
	if hasBytes {
		if tq.MaxBytesInFlight, err = parseSize(bytesStr); err != nil {
			return fmt.Errorf("bad tenant quota bytes %q: %w", s, err)
		}
	}
	q[name] = tq
	return nil
}

// parseSize parses sizes like "512KiB", "64MiB", "2GiB" or plain bytes.
func parseSize(s string) (int64, error) {
	units := []struct {
		suffix string
		mult   int64
	}{
		{suffix: "GiB", mult: 1 << 30},
		{suffix: "MiB", mult: 1 << 20},
		{suffix: "KiB", mult: 1 << 10},
		{suffix: "GB", mult: 1e9},
		{suffix: "MB", mult: 1e6},
		{suffix: "KB", mult: 1e3},
		{suffix: "B", mult: 1},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			n, err := strconv.ParseFloat(strings.TrimSuffix(s, u.suffix), 64)
			if err != nil {
				return 0, fmt.Errorf("bad size %q: %w", s, err)
			}
			return int64(n * float64(u.mult)), nil
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n, nil
}
