package main

import "testing"

func TestParseSize(t *testing.T) {
	tests := []struct {
		give    string
		want    int64
		wantErr bool
	}{
		{give: "1024", want: 1024},
		{give: "64MiB", want: 64 << 20},
		{give: "512KiB", want: 512 << 10},
		{give: "2GiB", want: 2 << 30},
		{give: "1.5MiB", want: 3 << 19},
		{give: "64MB", want: 64_000_000},
		{give: "5KB", want: 5000},
		{give: "1GB", want: 1_000_000_000},
		{give: "100B", want: 100},
		{give: "abc", wantErr: true},
		{give: "12XiB", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseSize(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseSize(%q) should error", tt.give)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSize(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("parseSize(%q) = %d, want %d", tt.give, got, tt.want)
		}
	}
}
