package main

import (
	"runtime"
	"testing"
)

func TestParseSize(t *testing.T) {
	tests := []struct {
		give    string
		want    int64
		wantErr bool
	}{
		{give: "1024", want: 1024},
		{give: "64MiB", want: 64 << 20},
		{give: "512KiB", want: 512 << 10},
		{give: "2GiB", want: 2 << 30},
		{give: "1.5MiB", want: 3 << 19},
		{give: "64MB", want: 64_000_000},
		{give: "5KB", want: 5000},
		{give: "1GB", want: 1_000_000_000},
		{give: "100B", want: 100},
		{give: "abc", wantErr: true},
		{give: "12XiB", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseSize(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseSize(%q) should error", tt.give)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSize(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("parseSize(%q) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestDefaultShards(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if got := defaultShards(1 << 30); got != procs {
		t.Errorf("defaultShards(1GiB) = %d, want GOMAXPROCS (%d)", got, procs)
	}
	// Small caches never over-shard: each shard keeps >= 8MiB.
	if got := defaultShards(8 << 20); got != 1 {
		t.Errorf("defaultShards(8MiB) = %d, want 1", got)
	}
	if got := defaultShards(1 << 10); got != 1 {
		t.Errorf("defaultShards(1KiB) = %d, want 1", got)
	}
	if procs >= 2 {
		if got := defaultShards(16 << 20); got != 2 {
			t.Errorf("defaultShards(16MiB) = %d, want 2", got)
		}
	}
}
