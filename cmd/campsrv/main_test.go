package main

import (
	"bufio"
	"fmt"
	"net"
	"os/exec"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseSize(t *testing.T) {
	tests := []struct {
		give    string
		want    int64
		wantErr bool
	}{
		{give: "1024", want: 1024},
		{give: "64MiB", want: 64 << 20},
		{give: "512KiB", want: 512 << 10},
		{give: "2GiB", want: 2 << 30},
		{give: "1.5MiB", want: 3 << 19},
		{give: "64MB", want: 64_000_000},
		{give: "5KB", want: 5000},
		{give: "1GB", want: 1_000_000_000},
		{give: "100B", want: 100},
		{give: "abc", wantErr: true},
		{give: "12XiB", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseSize(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseSize(%q) should error", tt.give)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSize(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("parseSize(%q) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestDefaultShards(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if got := defaultShards(1 << 30); got != procs {
		t.Errorf("defaultShards(1GiB) = %d, want GOMAXPROCS (%d)", got, procs)
	}
	// Small caches never over-shard: each shard keeps >= 8MiB.
	if got := defaultShards(8 << 20); got != 1 {
		t.Errorf("defaultShards(8MiB) = %d, want 1", got)
	}
	if got := defaultShards(1 << 10); got != 1 {
		t.Errorf("defaultShards(1KiB) = %d, want 1", got)
	}
	if procs >= 2 {
		if got := defaultShards(16 << 20); got != 2 {
			t.Errorf("defaultShards(16MiB) = %d, want 2", got)
		}
	}
}

// TestSIGTERMGracefulExitCode is the end-to-end pin for the signal path: a
// real campsrv process, a client with pipelined noreply writes in flight,
// SIGTERM — and the process must drain the pipeline, answer the trailing
// replied command, flush, and exit 0.
func TestSIGTERMGracefulExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the campsrv binary")
	}
	bin := t.TempDir() + "/campsrv"
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	srv := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-mem", "8MiB", "-shards", "2",
		"-data-dir", t.TempDir(), "-drain-timeout", "2s")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = srv.Stdout
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The bound address is in the startup banner.
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		t.Logf("campsrv: %s", line)
		if strings.HasPrefix(line, "campsrv listening on ") {
			addr = strings.Fields(line)[3]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listen banner (scanner err %v)", sc.Err())
	}
	go func() { // keep draining the pipe so the child never blocks on stdout
		for sc.Scan() {
		}
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var pipe strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&pipe, "set sig:%03d 0 0 3 noreply\r\nv%02d\r\n", i, i%100)
	}
	pipe.WriteString("version\r\n")
	if _, err := conn.Write([]byte(pipe.String())); err != nil {
		t.Fatal(err)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("reply after SIGTERM = %q, %v; want VERSION", line, err)
	}
	conn.Close() // let the drain finish without waiting out the grace window

	waitErr := make(chan error, 1)
	go func() { waitErr <- srv.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("campsrv exited non-zero: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("campsrv did not exit after SIGTERM")
	}
}
