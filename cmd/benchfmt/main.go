// Command benchfmt converts `go test -bench` output into a small JSON
// document, so benchmark runs can be committed (BENCH_PR2.json and friends)
// and diffed across PRs to track the performance trajectory.
//
// Usage:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchfmt -out BENCH.json
//	go run ./cmd/benchfmt -out BENCH.json bench1.txt bench2.txt
//
// Non-benchmark lines are ignored, so raw `go test` output can be piped in
// unfiltered.
//
// With -gate and -max-allocs, benchfmt doubles as the CI allocation gate:
// it exits non-zero when the named benchmark's allocs/op exceeds the budget,
// so a PR that regresses the zero-allocation protocol path fails the build.
// Allocation counts are deterministic enough to gate on where timings are
// not.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the committed JSON document.
type Report struct {
	Go         string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	CPUs       int               `json:"cpus"`
	Note       string            `json:"note,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
	Latency    []LatencyResult   `json:"latency,omitempty"`
	QuotaShed  []QuotaShedResult `json:"quota_shed,omitempty"`
}

// QuotaShedResult is one benchmark's per-tenant quota-shed count, lifted
// from the quota_shed_<tenant> metrics the quota-capped tenant benchmark
// reports (see BenchmarkServerOpsTenantQuota) — how many requests the
// server answered "tenant over quota" for each tenant during the run.
type QuotaShedResult struct {
	Bench  string  `json:"bench"`
	Tenant string  `json:"tenant"`
	Shed   float64 `json:"shed"`
}

// LatencyResult is one benchmark's per-verb server-side latency summary,
// lifted from p50_<verb>_us / p95_<verb>_us / p99_<verb>_us metrics the
// server-facing benchmarks report (see BenchmarkServerOps).
type LatencyResult struct {
	Bench string  `json:"bench"`
	Verb  string  `json:"verb"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form note recorded in the report")
	gate := flag.String("gate", "", "benchmark name (GOMAXPROCS suffix stripped) whose allocs/op must not exceed -max-allocs")
	maxAllocs := flag.Float64("max-allocs", 0, "allocs/op budget enforced for -gate")
	flag.Parse()

	var results []Result
	if flag.NArg() == 0 {
		rs, err := parse(os.Stdin)
		if err != nil {
			return err
		}
		results = rs
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		rs, err := parse(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		results = append(results, rs...)
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}
	if *gate != "" {
		if err := gateAllocs(results, *gate, *maxAllocs); err != nil {
			return err
		}
	}
	report := Report{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Note:       *note,
		Benchmarks: results,
		Latency:    liftLatency(results),
		QuotaShed:  liftQuotaShed(results),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// gateAllocs fails when the named benchmark's allocs/op exceeds budget. The
// benchmark must be present (a renamed or skipped benchmark must not pass
// the gate silently) and must have been run with -benchmem.
func gateAllocs(results []Result, name string, budget float64) error {
	for _, r := range results {
		if r.Name != name {
			continue
		}
		allocs, ok := r.Metrics["allocs/op"]
		if !ok {
			return fmt.Errorf("gate %s: no allocs/op metric (run with -benchmem)", name)
		}
		if allocs > budget {
			return fmt.Errorf("gate %s: %v allocs/op exceeds the budget of %v — the protocol hot path regressed", name, allocs, budget)
		}
		fmt.Fprintf(os.Stderr, "benchfmt: gate %s: %v allocs/op within budget %v\n", name, allocs, budget)
		return nil
	}
	return fmt.Errorf("gate %s: benchmark not found in input", name)
}

// liftLatency collects p50_<verb>_us / p95_<verb>_us / p99_<verb>_us
// metrics into the report's latency section, one entry per (benchmark,
// verb), in input order.
func liftLatency(results []Result) []LatencyResult {
	var out []LatencyResult
	index := make(map[string]int) // "bench\x00verb" -> out index
	for _, r := range results {
		for unit, v := range r.Metrics {
			q, rest, ok := strings.Cut(unit, "_")
			if !ok || (q != "p50" && q != "p95" && q != "p99") {
				continue
			}
			verb, found := strings.CutSuffix(rest, "_us")
			if !found || verb == "" {
				continue
			}
			key := r.Name + "\x00" + verb
			i, seen := index[key]
			if !seen {
				i = len(out)
				index[key] = i
				out = append(out, LatencyResult{Bench: r.Name, Verb: verb})
			}
			switch q {
			case "p50":
				out[i].P50us = v
			case "p95":
				out[i].P95us = v
			case "p99":
				out[i].P99us = v
			}
		}
	}
	// Metrics is a map, so first-seen order is not deterministic; sort so
	// committed reports diff cleanly.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Verb < out[j].Verb
	})
	return out
}

// liftQuotaShed collects quota_shed_<tenant> metrics into the report's
// quota_shed section, one entry per (benchmark, tenant).
func liftQuotaShed(results []Result) []QuotaShedResult {
	var out []QuotaShedResult
	for _, r := range results {
		for unit, v := range r.Metrics {
			tenant, ok := strings.CutPrefix(unit, "quota_shed_")
			if !ok || tenant == "" {
				continue
			}
			out = append(out, QuotaShedResult{Bench: r.Name, Tenant: tenant, Shed: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

// parse extracts benchmark result lines:
//
//	BenchmarkName-8   1234   987 ns/op   12 B/op   3 allocs/op   456 ops/s
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that happens to start with Benchmark
		}
		res := Result{
			Name:       trimGOMAXPROCS(fields[0]),
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		// The rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		if len(res.Metrics) == 0 {
			continue
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// trimGOMAXPROCS drops the trailing -N procs suffix go test appends, keeping
// names stable across machines.
func trimGOMAXPROCS(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
