package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: camp/internal/kvserver
BenchmarkServerOps/shards=1-8         	   26577	     44203 ns/op	    452501 ops/s	    9058 B/op	     161 allocs/op
BenchmarkGetHit/camp-8   	12345678	        95.2 ns/op
--- BENCH: BenchmarkFig4
    bench_test.go:42: table...
PASS
`
	rs, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(rs), rs)
	}
	r := rs[0]
	if r.Name != "BenchmarkServerOps/shards=1" {
		t.Fatalf("name = %q", r.Name)
	}
	if r.Iterations != 26577 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
	if r.Metrics["ns/op"] != 44203 || r.Metrics["ops/s"] != 452501 || r.Metrics["allocs/op"] != 161 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	if rs[1].Metrics["ns/op"] != 95.2 {
		t.Fatalf("float metric = %v", rs[1].Metrics)
	}
}

func TestGateAllocs(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkServerOps/shards=1", Metrics: map[string]float64{"allocs/op": 20}},
		{Name: "BenchmarkNoMem", Metrics: map[string]float64{"ns/op": 5}},
	}
	if err := gateAllocs(results, "BenchmarkServerOps/shards=1", 48); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := gateAllocs(results, "BenchmarkServerOps/shards=1", 19); err == nil {
		t.Fatal("over budget should fail")
	}
	if err := gateAllocs(results, "BenchmarkMissing", 48); err == nil {
		t.Fatal("missing benchmark should fail")
	}
	if err := gateAllocs(results, "BenchmarkNoMem", 48); err == nil {
		t.Fatal("missing allocs/op metric should fail")
	}
}

func TestTrimGOMAXPROCS(t *testing.T) {
	for give, want := range map[string]string{
		"BenchmarkX-8":            "BenchmarkX",
		"BenchmarkX/shards=1-16":  "BenchmarkX/shards=1",
		"BenchmarkX/shards=1":     "BenchmarkX/shards=1",
		"BenchmarkAblation/p=inf": "BenchmarkAblation/p=inf",
	} {
		if got := trimGOMAXPROCS(give); got != want {
			t.Errorf("trimGOMAXPROCS(%q) = %q, want %q", give, got, want)
		}
	}
}
