// Command tracegen writes reference trace files in the repository's text or
// binary format, reproducing the paper's workload families.
//
// Usage:
//
//	tracegen -out trace.txt [-workload bg|varsize|equisize|evolving]
//	         [-keys n] [-requests n] [-seed n] [-traces n]
//
// Workloads:
//
//	bg        §3 default — 70/20 skew, sizes ~[400,600], costs {1,100,10K}
//	varsize   §3.2/Fig 7 — heavy-tailed sizes, constant cost
//	equisize  §3.2/Fig 8 — equal sizes, costs uniform in [1,100K]
//	evolving  §3.1/Fig 6 — N back-to-back traces with disjoint key spaces
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"camp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "", "output file (.bin writes the binary format)")
		workload = flag.String("workload", "bg", "bg, varsize, equisize or evolving")
		keys     = flag.Int("keys", 20000, "number of distinct keys (per trace for evolving)")
		requests = flag.Int64("requests", 400000, "number of requests (per trace for evolving)")
		seed     = flag.Int64("seed", 1, "random seed")
		traces   = flag.Int("traces", 10, "evolving workload: number of back-to-back traces")
	)
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var src trace.Source
	switch *workload {
	case "bg":
		src = trace.NewBGTrace(*seed, *keys, *requests)
	case "varsize":
		src = trace.NewVariableSizeTrace(*seed, *keys, *requests)
	case "equisize":
		src = trace.NewEquiSizeTrace(*seed, *keys, *requests)
	case "evolving":
		src = trace.Concat(trace.NewEvolvingTraces(*seed, *traces, *keys, *requests)...)
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()

	var n int64
	if strings.HasSuffix(*out, ".bin") {
		n, err = trace.WriteBinary(f, src)
	} else {
		n, err = trace.WriteText(f, src)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d requests to %s\n", n, *out)
	return nil
}
