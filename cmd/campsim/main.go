// Command campsim regenerates the CAMP paper's evaluation figures (4, 5a-5d,
// 6a-6d, 7, 8a-8c) as text tables from trace-driven simulation.
//
// Usage:
//
//	campsim [-fig all|4|5a|5b|5c|5d|5d-pools|6a|6b|6c|6d|7|8a|8b|8c]
//	        [-scale f] [-keys n] [-requests n] [-seed n]
//
// The default workload is a laptop-scale rendition of the paper's 4M-row BG
// traces; -scale 10 restores paper scale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"camp/internal/figures"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "campsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("campsim", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "figure to regenerate (all, 4, 5a, 5b, 5c, 5d, 5d-pools, 6a, 6b, 6c, 6d, 7, 8a, 8b, 8c, 9, 9a, 9b, 9c, baselines)")
		scale    = fs.Float64("scale", 1, "workload scale factor (10 = paper scale)")
		keys     = fs.Int("keys", 0, "override key count")
		requests = fs.Int64("requests", 0, "override request count")
		seed     = fs.Int64("seed", 0, "override random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := figures.Default()
	if *scale != 1 {
		cfg = cfg.Scale(*scale)
	}
	if *keys > 0 {
		cfg.Keys = *keys
	}
	if *requests > 0 {
		cfg.Requests = *requests
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	type genFunc func(figures.Config) *figures.Table
	gens := []struct {
		id string
		fn genFunc
	}{
		{id: "4", fn: figures.Fig4},
		{id: "5a", fn: figures.Fig5a},
		{id: "5b", fn: figures.Fig5b},
		{id: "5c", fn: figures.Fig5c},
		{id: "5d", fn: figures.Fig5d},
		{id: "5d-pools", fn: figures.Fig5dPools},
		{id: "6a", fn: figures.Fig6a},
		{id: "6b", fn: figures.Fig6b},
		{id: "6c", fn: figures.Fig6c},
		{id: "6d", fn: figures.Fig6d},
		{id: "7", fn: figures.Fig7},
		{id: "8a", fn: figures.Fig8a},
		{id: "8b", fn: figures.Fig8b},
		{id: "8c", fn: figures.Fig8c},
		{id: "baselines", fn: figures.Baselines},
		{id: "rdbms", fn: figures.RDBMS},
	}

	want := strings.ToLower(*fig)
	matched := false
	for _, g := range gens {
		if want != "all" && want != g.id {
			continue
		}
		matched = true
		start := time.Now()
		table := g.fn(cfg)
		fmt.Fprintln(out, table.Format())
		fmt.Fprintf(out, "(fig %s computed in %v)\n\n", g.id, time.Since(start).Round(time.Millisecond))
	}
	if want == "all" || want == "9" || want == "9a" || want == "9b" || want == "9c" {
		matched = true
		start := time.Now()
		for _, table := range figures.Fig9All(cfg) {
			if want == "all" || want == "9" || strings.HasSuffix(table.ID, want) {
				fmt.Fprintln(out, table.Format())
			}
		}
		fmt.Fprintf(out, "(fig 9 computed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return nil
}
