package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "5c", "-scale", "0.02"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig5c") || !strings.Contains(out, "camp(p=5)") {
		t.Fatalf("output missing table: %s", out)
	}
	if strings.Contains(out, "fig5d") {
		t.Fatal("-fig 5c must not print other figures")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "nope"}, &buf); err == nil {
		t.Fatal("unknown figure should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestRunOverrides(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "7", "-keys", "300", "-requests", "5000", "-seed", "9"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig7") {
		t.Fatalf("missing fig7 output: %s", buf.String())
	}
}

func TestRunBaselines(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "baselines", "-scale", "0.02"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"arc", "2q", "lfu", "gdwheel", "camp+admit"} {
		if !strings.Contains(out, col) {
			t.Fatalf("baselines output missing %s: %s", col, out)
		}
	}
}
