package camp

import (
	"sync"
	"time"
)

// loader deduplicates concurrent computations of the same key
// (singleflight) for Cache.GetOrCompute.
type loader struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done  chan struct{}
	value []byte
	err   error
}

// GetOrCompute returns the cached value for key, or runs compute to produce
// it, caches the result and returns it. Concurrent callers for the same key
// share a single compute invocation (they block until it finishes).
//
// If compute reports cost 0, the elapsed computation time in microseconds
// is charged as the entry's cost — the same derivation the paper's IQ
// framework applies between a get miss and the subsequent set (§4). Compute
// errors are returned to every waiting caller and nothing is cached.
func (c *Cache) GetOrCompute(key string, compute func() (value []byte, cost int64, err error)) ([]byte, error) {
	if v, ok := c.Get(key); ok {
		return v, nil
	}

	c.loaderOnce.Do(func() {
		c.loader = &loader{calls: make(map[string]*call)}
	})
	l := c.loader

	l.mu.Lock()
	if inflight, ok := l.calls[key]; ok {
		l.mu.Unlock()
		<-inflight.done
		return inflight.value, inflight.err
	}
	cl := &call{done: make(chan struct{})}
	l.calls[key] = cl
	l.mu.Unlock()

	// Double-check after winning the flight: another goroutine may have
	// stored the value between our Get and the registration.
	if v, ok := c.Get(key); ok {
		cl.value = v
		c.finish(key, cl)
		return v, nil
	}

	start := time.Now()
	value, cost, err := compute()
	if err != nil {
		cl.err = err
		c.finish(key, cl)
		return nil, err
	}
	if cost <= 0 {
		cost = time.Since(start).Microseconds()
		if cost < 1 {
			cost = 1
		}
	}
	c.Set(key, value, cost)
	cl.value = value
	c.finish(key, cl)
	return value, nil
}

func (c *Cache) finish(key string, cl *call) {
	c.loader.mu.Lock()
	delete(c.loader.calls, key)
	c.loader.mu.Unlock()
	close(cl.done)
}
