package camp_test

import (
	"fmt"

	"camp"
)

// Example demonstrates basic cost-aware caching: the expensive entry
// survives cheap churn that would wash it out of an LRU cache.
func Example() {
	c, err := camp.New(16 << 10)
	if err != nil {
		panic(err)
	}

	c.Set("cheap:1", []byte("db row"), 800)          // 0.8ms query
	c.Set("expensive:1", []byte("model"), 9_000_000) // 9s computation

	for i := 0; i < 1000; i++ {
		c.Set(fmt.Sprintf("churn:%d", i), make([]byte, 256), 500)
	}

	_, ok := c.Get("expensive:1")
	fmt.Println("expensive entry survived:", ok)
	// Output: expensive entry survived: true
}

// ExampleNew_policies shows how to run the same workload under different
// eviction policies for comparison.
func ExampleNew_policies() {
	for _, kind := range []camp.PolicyKind{camp.LRU, camp.CAMP} {
		c, err := camp.New(1<<20, camp.WithPolicy(kind))
		if err != nil {
			panic(err)
		}
		c.Set("k", []byte("v"), 10)
		fmt.Println(kind.String(), c.Len())
	}
	// Output:
	// lru 1
	// camp 1
}

// ExampleWithEvictionHook observes evictions as they happen.
func ExampleWithEvictionHook() {
	evicted := 0
	c, err := camp.New(1<<10,
		camp.WithPolicy(camp.LRU),
		camp.WithEvictionHook(func(e camp.Entry) { evicted++ }),
	)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 100; i++ {
		c.SetSized(fmt.Sprintf("k%d", i), nil, 64, 1)
	}
	fmt.Println("evictions observed:", evicted > 0)
	// Output: evictions observed: true
}

// ExampleNewCAMPPolicy uses the metadata-only policy directly, as a
// simulator would.
func ExampleNewCAMPPolicy() {
	p := camp.NewCAMPPolicy(100, camp.DefaultPrecision)
	p.Set("a", 50, 1)     // cheap
	p.Set("b", 50, 10000) // precious
	p.Set("c", 50, 100)   // forces one eviction: "a" goes
	fmt.Println(p.Contains("a"), p.Contains("b"), p.Contains("c"))
	// Output: false true true
}
