module camp

go 1.24
