package camp

import (
	"fmt"
	"hash/maphash"
	"sync"

	"camp/internal/cache"
)

// Cache is a thread-safe, value-storing cache with a pluggable
// cost/size-aware eviction policy (CAMP by default). Keys are hashed across
// one or more independently locked shards.
type Cache struct {
	shards   []*shard
	seed     maphash.Seed
	mask     uint64
	overhead int64
	defCost  int64
	snapPath string

	loaderOnce sync.Once
	loader     *loader
}

type shard struct {
	mu     sync.Mutex
	policy cache.Policy
	values map[string][]byte
}

// New returns a Cache with the given total byte capacity. By default it uses
// the CAMP policy at DefaultPrecision with a single shard.
func New(capacity int64, opts ...Option) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("camp: capacity must be positive, got %d", capacity)
	}
	cfg := config{
		kind:        CAMP,
		precision:   DefaultPrecision,
		shards:      1,
		defaultCost: 1,
	}
	for _, o := range opts {
		if err := o.apply(&cfg); err != nil {
			return nil, err
		}
	}
	c := &Cache{
		shards:   make([]*shard, cfg.shards),
		seed:     maphash.MakeSeed(),
		mask:     uint64(cfg.shards - 1),
		overhead: cfg.overhead,
		defCost:  cfg.defaultCost,
	}
	per := capacity / int64(cfg.shards)
	rem := capacity % int64(cfg.shards)
	for i := range c.shards {
		shardCap := per
		if i == 0 {
			shardCap += rem
		}
		p, err := cfg.buildPolicy(shardCap)
		if err != nil {
			return nil, err
		}
		s := &shard{policy: p, values: make(map[string][]byte)}
		hook := cfg.onEvict
		p.SetEvictFunc(func(e Entry) {
			delete(s.values, e.Key)
			if hook != nil {
				hook(e)
			}
		})
		c.shards[i] = s
	}
	if cfg.snapshotPath != "" {
		c.snapPath = cfg.snapshotPath
		if err := c.loadSnapshotFile(cfg.snapshotPath); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Get returns the value cached under key, refreshing its priority. The
// returned slice is the cached one: callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.policy.Get(key) {
		return nil, false
	}
	return s.values[key], true
}

// Set caches value under key with the given recomputation cost, evicting
// colder entries as needed. A cost of 0 is replaced by the configured
// default cost. It reports whether the entry was admitted. The value slice
// is retained; callers must not modify it afterwards.
func (c *Cache) Set(key string, value []byte, cost int64) bool {
	size := int64(len(key)) + int64(len(value)) + c.overhead
	return c.SetSized(key, value, size, cost)
}

// SetSized is Set with an explicit charged size, for callers whose values
// have a footprint different from len(value) (compressed entries, handles to
// off-heap data, and so on).
func (c *Cache) SetSized(key string, value []byte, size, cost int64) bool {
	if cost <= 0 {
		cost = c.defCost
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.policy.Set(key, size, cost) {
		// The policy may have dropped a previous version of the entry
		// on a failed re-admit; keep the value map in sync.
		if !s.policy.Contains(key) {
			delete(s.values, key)
		}
		return false
	}
	s.values[key] = value
	return true
}

// Delete removes key, reporting whether it was present.
func (c *Cache) Delete(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.policy.Delete(key) {
		return false
	}
	delete(s.values, key)
	return true
}

// Contains reports residency without touching priorities.
func (c *Cache) Contains(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy.Contains(key)
}

// Peek returns the entry's metadata without refreshing its priority.
func (c *Cache) Peek(key string) (Entry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy.Peek(key)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.policy.Len()
		s.mu.Unlock()
	}
	return n
}

// Used returns the total charged bytes across shards.
func (c *Cache) Used() int64 {
	var u int64
	for _, s := range c.shards {
		s.mu.Lock()
		u += s.policy.Used()
		s.mu.Unlock()
	}
	return u
}

// Capacity returns the total configured capacity.
func (c *Cache) Capacity() int64 {
	var t int64
	for _, s := range c.shards {
		t += s.policy.Capacity()
	}
	return t
}

// Stats returns operation counters summed across shards.
func (c *Cache) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st := s.policy.Stats()
		s.mu.Unlock()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Sets += st.Sets
		out.Updates += st.Updates
		out.Evictions += st.Evictions
		out.EvictedBytes += st.EvictedBytes
		out.Rejected += st.Rejected
	}
	return out
}

// QueueCount returns the number of non-empty CAMP LRU queues summed across
// shards, or 0 for non-CAMP policies.
func (c *Cache) QueueCount() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		if qc, ok := s.policy.(cache.QueueCounter); ok {
			n += qc.QueueCount()
		}
		s.mu.Unlock()
	}
	return n
}

// Shards returns the number of shards.
func (c *Cache) Shards() int { return len(c.shards) }

func (c *Cache) shardFor(key string) *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := maphash.String(c.seed, key)
	return c.shards[h&c.mask]
}
