GO ?= go
BENCH_OUT ?= BENCH_PR10.json

# The checked-in allocs/op budget for the protocol hot path. The PR 2
# baseline was 161 allocs per 20-op batch; the zero-allocation protocol
# rewrite (PR 3) landed at ~20 — this budget keeps headroom for pool and GC
# jitter while still failing anything that creeps back past the ≥60%-cut
# acceptance bar (64).
ALLOCS_BUDGET ?= 48

# The packed-arena budget (PR 10): sets copy into pooled scratch and packed
# segments instead of allocating value buffers, so the measured steady state
# is 8 allocs per 20-op batch — the CAMP policy-node floor on overwrites.
# Headroom to 12 covers pool jitter; byte mode keeps its own budget above.
ARENA_ALLOCS_BUDGET ?= 12

# pipefail so `go test | tee` recipes fail when go test fails, not when tee
# does — otherwise a panicking benchmark still "succeeds" and commits a
# partial BENCH file.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

# Seed for `make chaos`; override to replay a failing schedule exactly:
#   make chaos CHAOS_SEED=99 CHAOS_ROUNDS=20
CHAOS_SEED ?= 1
CHAOS_ROUNDS ?= 8

.PHONY: verify fmt vet build test race race-all chaos fuzz fuzz-smoke bench alloc-gate metrics-gate

verify: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrent surfaces: the public cache and the TCP server.
race:
	$(GO) test -race ./internal/kvserver/ .

# Full race sweep, as CI runs it: the replication/persistence chaos tests
# get a dedicated run first (fail fast on the concurrency-heavy surface —
# failover, replica restarts, durable positions, snapshot fidelity), then
# the full sweep — NOT -short, which would silently drop -race coverage for
# every Short-skipped test, not just the replication ones.
race-all:
	$(GO) test -race -run 'TestRepl|TestFailover|TestDialWithReplica|TestSnapshotOrderFidelity|TestCrashRecovery' ./internal/kvserver/
	$(GO) test -race -run 'TestGolden|TestV1Reader|TestWritersAlways|TestJournalCarries' ./internal/persist/
	$(GO) test -race ./...

# Randomized fault-injection harness under the race detector: a
# primary+follower pair driven through seeded schedules of disk faults
# (EIO/ENOSPC/torn writes via the fault.FS seam) and replication-link
# faults (latency, partitions, truncation via the fault TCP proxy), plus
# the deterministic degraded-mode end-to-end pin. The seed is printed on
# failure; replay it with CHAOS_SEED.
chaos:
	CAMP_CHAOS=1 CAMP_CHAOS_SEED=$(CHAOS_SEED) CAMP_CHAOS_ROUNDS=$(CHAOS_ROUNDS) \
		$(GO) test -race -count=1 -run 'TestChaosPrimaryFollower|TestDegradedModeEndToEnd' -v ./internal/kvserver/

# Benchmark the server throughput (the sharding tentpole) plus the policy
# hot paths and figure pipelines, and record the run as JSON so the perf
# trajectory is diffable across PRs.
bench:
	@rm -f .bench.tmp.txt
	$(GO) test -run '^$$' -bench 'BenchmarkServerOps|BenchmarkEvictionManyTenants' -benchmem ./internal/kvserver/ | tee -a .bench.tmp.txt
	$(GO) test -run '^$$' -bench 'BenchmarkGetHit|BenchmarkSetEvict|BenchmarkMixedWorkload|BenchmarkShardedCache' -benchmem . | tee -a .bench.tmp.txt
	$(GO) test -run '^$$' -bench 'BenchmarkFig(4|5a)$$' -benchtime 1x -benchmem . | tee -a .bench.tmp.txt
	$(GO) run ./cmd/benchfmt -out $(BENCH_OUT) \
		-note "BenchmarkServerOps compares kvserver shard counts under parallel clients; the multi-core speedup only shows when cpus > 1 (see the cpus field) — on a single core the spread reflects per-shard overhead only." \
		.bench.tmp.txt
	@rm -f .bench.tmp.txt
	@echo "wrote $(BENCH_OUT)"

# Fail if the server's protocol hot path regresses past the checked-in
# allocs/op budget. Allocation counts are deterministic enough for CI where
# wall-clock timings are not.
alloc-gate:
	@rm -f .allocgate.tmp.txt
	$(GO) test -run '^$$' -bench 'BenchmarkServerOps(Arena)?/shards=1$$' -benchmem -benchtime 2s ./internal/kvserver/ | tee .allocgate.tmp.txt
	$(GO) run ./cmd/benchfmt -gate 'BenchmarkServerOps/shards=1' -max-allocs $(ALLOCS_BUDGET) .allocgate.tmp.txt > /dev/null
	$(GO) run ./cmd/benchfmt -gate 'BenchmarkServerOpsArena/shards=1' -max-allocs $(ARENA_ALLOCS_BUDGET) .allocgate.tmp.txt > /dev/null
	@rm -f .allocgate.tmp.txt

# Fail if a live /metrics scrape stops being valid Prometheus exposition
# text or loses a required family (latency histograms, shard gauges,
# replication-lag gauges), or if the pprof endpoints stop serving. Runs the
# same end-to-end scrape test CI does.
metrics-gate:
	$(GO) test -run 'TestMetricsGate|TestMetricsStressRace' -count=1 ./internal/kvserver/

# Short fuzz pass over the binary decoders (journal records, the v2
# snapshot reader, position records, the replication stream, the sync
# handshake, trace files).
fuzz:
	$(GO) test ./internal/alloc/ -fuzz FuzzArenaSetGet -fuzztime 30s
	$(GO) test ./internal/persist/ -fuzz FuzzDecodeRecord -fuzztime 30s
	$(GO) test ./internal/persist/ -fuzz FuzzDecodeSnapshotV2 -fuzztime 30s
	$(GO) test ./internal/persist/ -fuzz FuzzDecodePositionRecord -fuzztime 30s
	$(GO) test ./internal/persist/ -fuzz FuzzStreamFrames -fuzztime 30s
	$(GO) test ./internal/kvserver/ -fuzz FuzzParseSyncReply -fuzztime 15s
	$(GO) test ./internal/kvserver/ -fuzz FuzzParseSyncArgs -fuzztime 15s
	$(GO) test ./internal/kvserver/ -fuzz FuzzParseTenantCommand -fuzztime 15s
	$(GO) test ./internal/trace/ -fuzz FuzzBinaryReader -fuzztime 30s

# CI smoke fuzz: a few seconds per persistence-format decoder on every PR,
# so the corpus actually executes (seed-only runs never explore) without
# holding the pipeline hostage. The full half-minute-per-target pass stays
# in `make fuzz` for local soak runs.
fuzz-smoke:
	$(GO) test ./internal/alloc/ -fuzz FuzzArenaSetGet -fuzztime 10s
	$(GO) test ./internal/persist/ -fuzz FuzzDecodeSnapshotV2 -fuzztime 10s
	$(GO) test ./internal/persist/ -fuzz FuzzDecodePositionRecord -fuzztime 10s
	$(GO) test ./internal/persist/ -fuzz FuzzDecodeRecord -fuzztime 10s
