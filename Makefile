GO ?= go

.PHONY: verify fmt vet build test race fuzz

verify: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrent surfaces: the public cache and the TCP server.
race:
	$(GO) test -race ./internal/kvserver/ .

# Short fuzz pass over the binary decoders.
fuzz:
	$(GO) test ./internal/persist/ -fuzz FuzzDecodeRecord -fuzztime 30s
	$(GO) test ./internal/trace/ -fuzz FuzzBinaryReader -fuzztime 30s
