package camp

// This file holds one benchmark per table/figure of the paper's evaluation
// (run them with -benchtime=1x to print the regenerated tables via b.Log)
// plus microbenchmarks for the hot paths and the ablations called out in
// DESIGN.md. cmd/campsim prints the same tables at full scale.

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"camp/internal/alloc"
	"camp/internal/cache"
	"camp/internal/core"
	"camp/internal/figures"
	"camp/internal/rounding"
	"camp/internal/trace"
)

// benchConfig keeps figure benchmarks to a few seconds each.
func benchConfig() figures.Config {
	return figures.Config{
		Keys:             4000,
		Requests:         120000,
		EvolvingTraces:   5,
		EvolvingRequests: 40000,
		Seed:             1,
		Ratios:           []float64{0.1, 0.3, 0.6},
		Precisions:       []uint{1, 3, 5, 7, core.PrecisionInf},
	}
}

func benchFigure(b *testing.B, fn func(figures.Config) *figures.Table) {
	b.Helper()
	cfg := benchConfig()
	var tbl *figures.Table
	for i := 0; i < b.N; i++ {
		tbl = fn(cfg)
	}
	b.Log("\n" + tbl.Format())
}

func BenchmarkFig4(b *testing.B)      { benchFigure(b, figures.Fig4) }
func BenchmarkFig5a(b *testing.B)     { benchFigure(b, figures.Fig5a) }
func BenchmarkFig5b(b *testing.B)     { benchFigure(b, figures.Fig5b) }
func BenchmarkFig5c(b *testing.B)     { benchFigure(b, figures.Fig5c) }
func BenchmarkFig5d(b *testing.B)     { benchFigure(b, figures.Fig5d) }
func BenchmarkFig5dPool(b *testing.B) { benchFigure(b, figures.Fig5dPools) }
func BenchmarkFig6a(b *testing.B)     { benchFigure(b, figures.Fig6a) }
func BenchmarkFig6b(b *testing.B)     { benchFigure(b, figures.Fig6b) }
func BenchmarkFig6c(b *testing.B)     { benchFigure(b, figures.Fig6c) }
func BenchmarkFig6d(b *testing.B)     { benchFigure(b, figures.Fig6d) }
func BenchmarkFig7(b *testing.B)      { benchFigure(b, figures.Fig7) }
func BenchmarkFig8a(b *testing.B)     { benchFigure(b, figures.Fig8a) }
func BenchmarkFig8b(b *testing.B)     { benchFigure(b, figures.Fig8b) }
func BenchmarkFig8c(b *testing.B)     { benchFigure(b, figures.Fig8c) }

func BenchmarkFig9(b *testing.B) {
	cfg := benchConfig()
	cfg.Requests = 48000 // replays Requests/4 rows over loopback TCP
	var tables []*figures.Table
	for i := 0; i < b.N; i++ {
		tables = figures.Fig9All(cfg)
	}
	for _, t := range tables {
		b.Log("\n" + t.Format())
	}
}

// BenchmarkTable1Rounding covers Table 1: the MSY rounding operation itself.
func BenchmarkTable1Rounding(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]uint64, 1024)
	for i := range xs {
		xs[i] = rng.Uint64() >> (rng.Intn(48))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= rounding.Round(xs[i&1023], 4)
	}
	_ = sink
}

// ---------------------------------------------------------------------------
// Policy microbenchmarks
// ---------------------------------------------------------------------------

func policyUnderTest(name string, capacity int64) cache.Policy {
	switch name {
	case "camp":
		return core.NewCamp(capacity)
	case "lru":
		return cache.NewLRU(capacity)
	case "gds":
		return core.NewGDS(capacity)
	default:
		panic("unknown policy " + name)
	}
}

// BenchmarkGetHit measures the hit path with a resident working set.
func BenchmarkGetHit(b *testing.B) {
	for _, name := range []string{"lru", "camp", "gds"} {
		b.Run(name, func(b *testing.B) {
			p := policyUnderTest(name, 1<<30)
			costs := []int64{1, 100, 10000}
			keys := make([]string, 4096)
			for i := range keys {
				keys[i] = "key" + strconv.Itoa(i)
				p.Set(keys[i], 100, costs[i%3])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Get(keys[i&4095])
			}
		})
	}
}

// BenchmarkSetEvict measures the insert-with-eviction path on a full cache.
func BenchmarkSetEvict(b *testing.B) {
	for _, name := range []string{"lru", "camp", "gds"} {
		b.Run(name, func(b *testing.B) {
			p := policyUnderTest(name, 4096*100)
			costs := []int64{1, 100, 10000}
			for i := 0; i < 4096; i++ {
				p.Set("warm"+strconv.Itoa(i), 100, costs[i%3])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Set("k"+strconv.Itoa(i), 100, costs[i%3])
			}
		})
	}
}

// BenchmarkMixedWorkload is the paper's regime: skewed gets with miss-fill.
func BenchmarkMixedWorkload(b *testing.B) {
	for _, name := range []string{"lru", "camp", "gds"} {
		b.Run(name, func(b *testing.B) {
			p := policyUnderTest(name, 200*1000)
			rng := rand.New(rand.NewSource(7))
			costs := []int64{1, 100, 10000}
			keys := make([]string, 8192)
			for i := range keys {
				keys[i] = "key" + strconv.Itoa(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var k string
				if rng.Intn(10) < 7 {
					k = keys[rng.Intn(len(keys)/5)]
				} else {
					k = keys[rng.Intn(len(keys))]
				}
				if !p.Get(k) {
					p.Set(k, 100, costs[rng.Intn(3)])
				}
			}
		})
	}
}

// BenchmarkShardedCache measures §4.1's vertical-scaling story: throughput
// of the public Cache under parallel load at different shard counts.
func BenchmarkShardedCache(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := New(64<<20, WithShards(shards))
			if err != nil {
				b.Fatal(err)
			}
			value := make([]byte, 100)
			for i := 0; i < 8192; i++ {
				c.Set("key"+strconv.Itoa(i), value, int64(i%100+1))
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				for pb.Next() {
					k := "key" + strconv.Itoa(rng.Intn(8192))
					if _, ok := c.Get(k); !ok {
						c.Set(k, value, int64(rng.Intn(100)+1))
					}
				}
			})
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §6)
// ---------------------------------------------------------------------------

// BenchmarkAblationPrecision shows precision's cost/benefit: run time of the
// same workload at different rounding precisions.
func BenchmarkAblationPrecision(b *testing.B) {
	for _, p := range []uint{1, 5, core.PrecisionInf} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			pol := core.NewCamp(200*1000, core.WithPrecision(p))
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := "key" + strconv.Itoa(rng.Intn(8192))
				if !pol.Get(k) {
					pol.Set(k, int64(rng.Intn(900)+100), int64(rng.Intn(10000)+1))
				}
			}
			b.ReportMetric(float64(pol.QueueCount()), "queues")
		})
	}
}

// BenchmarkAblationHeapArity compares the paper's 8-ary heap against binary
// and 4-ary heaps inside CAMP.
func BenchmarkAblationHeapArity(b *testing.B) {
	for _, d := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			pol := core.NewCamp(200*1000, core.WithHeapArity(d))
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := "key" + strconv.Itoa(rng.Intn(8192))
				if !pol.Get(k) {
					pol.Set(k, int64(rng.Intn(900)+100), int64(rng.Intn(10000)+1))
				}
			}
		})
	}
}

// BenchmarkAblationLUpdate compares Algorithm 1's min-of-remaining L rule
// against the classic Cao-Irani evicted-H rule.
func BenchmarkAblationLUpdate(b *testing.B) {
	for _, classic := range []bool{false, true} {
		name := "min-of-remaining"
		if classic {
			name = "classic-evicted-h"
		}
		b.Run(name, func(b *testing.B) {
			var opts []core.Option
			if classic {
				opts = append(opts, core.WithClassicLUpdate())
			}
			pol := core.NewCamp(200*1000, opts...)
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := "key" + strconv.Itoa(rng.Intn(8192))
				if !pol.Get(k) {
					pol.Set(k, int64(rng.Intn(900)+100), int64(rng.Intn(10000)+1))
				}
			}
		})
	}
}

// BenchmarkAblationGDSDelete compares GDS's two heap-deletion strategies
// (Figure 4's deviation discussion in EXPERIMENTS.md).
func BenchmarkAblationGDSDelete(b *testing.B) {
	for _, textbook := range []bool{false, true} {
		name := "replace-with-last"
		if textbook {
			name = "textbook"
		}
		b.Run(name, func(b *testing.B) {
			var pol *core.GDS
			if textbook {
				pol = core.NewGDS(200*1000, core.WithTextbookDelete())
			} else {
				pol = core.NewGDS(200 * 1000)
			}
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := "key" + strconv.Itoa(rng.Intn(8192))
				if !pol.Get(k) {
					pol.Set(k, int64(rng.Intn(900)+100), int64(rng.Intn(10000)+1))
				}
			}
			b.ReportMetric(float64(pol.HeapVisits())/float64(b.N), "visits/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate microbenchmarks
// ---------------------------------------------------------------------------

func BenchmarkSlabAllocFree(b *testing.B) {
	a, err := alloc.NewSlabAllocator(64<<20, alloc.WithSlabSize(1<<20))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := a.Alloc("k", 300)
		if err != nil {
			b.Fatal(err)
		}
		a.Free(h)
	}
}

func BenchmarkBuddyAllocFree(b *testing.B) {
	a, err := alloc.NewBuddyAllocator(64<<20, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := a.Alloc(300)
		if err != nil {
			b.Fatal(err)
		}
		a.Free(off)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := trace.NewBGTrace(int64(i), 1000, 10000)
		for {
			if _, ok := g.Next(); !ok {
				break
			}
		}
	}
}
